// Tests for the GAC(n,i) cyclic-group-arrival objects and the O_{n,k}
// conjunction objects (the PODC 2016 reconstruction), plus the simulator-
// level separation experiments backing bench_t4.
#include "subc/objects/onk.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "subc/algorithms/onk_algorithms.hpp"
#include "subc/core/hierarchy.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

template <class Body>
void solo(Body body) {
  Runtime rt;
  rt.add_process([&](Context& ctx) { body(ctx); });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(GacObject, SequentialArrivalRule) {
  // n=2, i=1: m = 5, blocks {1,2}, {3,4}, wrap arrival 5.
  GacObject gac(2, 1);
  solo([&](Context& ctx) {
    EXPECT_EQ(gac.propose(ctx, 10), 10);  // arrival 1: block 0 first
    EXPECT_EQ(gac.propose(ctx, 20), 10);  // arrival 2: block 0
    EXPECT_EQ(gac.propose(ctx, 30), 30);  // arrival 3: block 1 first
    EXPECT_EQ(gac.propose(ctx, 40), 30);  // arrival 4: block 1
    EXPECT_EQ(gac.propose(ctx, 50), 10);  // arrival 5: wrap → arrivals[0]
  });
}

TEST(GacObject, HangsBeyondCapacity) {
  Runtime rt;
  GacObject gac(1, 1);  // m = 3
  rt.add_process([&](Context& ctx) {
    gac.propose(ctx, 1);
    gac.propose(ctx, 2);
    gac.propose(ctx, 3);
    gac.propose(ctx, 4);  // 4th propose hangs
    FAIL() << "unreachable";
  });
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kHung);
}

TEST(GacObject, CapacityAndAgreementAccessors) {
  GacObject gac(3, 2);
  EXPECT_EQ(gac.capacity(), 11);  // 3*3+2
  EXPECT_EQ(gac.agreement(), 3);
  EXPECT_EQ(gac.n(), 3);
  EXPECT_EQ(gac.level(), 2);
}

// Property: among m_i arrivals there are at most j_i = i+1 distinct
// outputs, and the bound is attained by the sequential schedule — for a
// grid of (n, i), under every schedule.
struct GacCase {
  int n;
  int i;
};

class GacAgreementSweep : public ::testing::TestWithParam<GacCase> {};

TEST_P(GacAgreementSweep, FullOccupancyRespectsAgreementBound) {
  const auto [n, i] = GetParam();
  const int m = GacObject::capacity_static(n, i);
  const int j = i + 1;
  std::vector<Value> inputs;
  for (int p = 0; p < m; ++p) {
    inputs.push_back(200 + p);
  }
  int max_distinct = 0;
  const ExecutionBody body = [&, n = n, i = i](ScheduleDriver& driver) {
    Runtime rt;
    GacObject gac(n, i);
    for (int p = 0; p < m; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(gac.propose(ctx, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, j);
    max_distinct = std::max(max_distinct, distinct_decisions(run.decisions));
  };
  if (m <= 5) {
    const auto r = Explorer::explore(body);
    EXPECT_TRUE(r.ok()) << *r.violation;
    EXPECT_TRUE(r.complete);
  } else {
    const auto r = RandomSweep::run(body, 500);
    EXPECT_TRUE(r.ok()) << *r.violation;
  }
  EXPECT_EQ(max_distinct, j);  // tight
}

INSTANTIATE_TEST_SUITE_P(Grid, GacAgreementSweep,
                         ::testing::Values(GacCase{1, 1}, GacCase{1, 2},
                                           GacCase{2, 1}, GacCase{2, 2},
                                           GacCase{3, 1}, GacCase{3, 2},
                                           GacCase{2, 3}));

TEST(OnkObject, ComponentsAreIndependent) {
  OnkObject onk(2, 3);
  solo([&](Context& ctx) {
    EXPECT_EQ(onk.propose(ctx, 0, 1), 1);
    EXPECT_EQ(onk.propose(ctx, 1, 2), 2);  // fresh component: own value
    EXPECT_EQ(onk.propose(ctx, 2, 3), 3);
    EXPECT_EQ(onk.propose(ctx, 1, 4), 2);  // block 0 of component 1
  });
  EXPECT_EQ(onk.component(0).capacity(), 2);
  EXPECT_EQ(onk.component(2).capacity(), 8);
  EXPECT_THROW(onk.component(3), SimError);
}

TEST(OnkObject, ParameterValidation) {
  EXPECT_THROW(OnkObject(0, 1), SimError);
  EXPECT_THROW(OnkObject(1, 0), SimError);
  EXPECT_THROW(GacObject(0, 0), SimError);
  GacObject gac(2, 1);
  solo([&](Context& ctx) {
    EXPECT_THROW(gac.propose(ctx, kBottom), SimError);
  });
}

// OnkSetConsensus: the optimal-partition construction achieves its declared
// agreement in the simulator.
struct OnkScCase {
  int n;
  int k;
  int procs;
};

class OnkSetConsensusSweep : public ::testing::TestWithParam<OnkScCase> {};

TEST_P(OnkSetConsensusSweep, AchievesDeclaredAgreement) {
  const auto [n, k, procs] = GetParam();
  std::vector<Value> inputs;
  for (int p = 0; p < procs; ++p) {
    inputs.push_back(300 + p);
  }
  OnkSetConsensus probe(n, k, procs);
  const int x = probe.agreement();
  EXPECT_EQ(x, onk_best_agreement(n, k, procs));
  int max_distinct = 0;
  const auto result = RandomSweep::run(
      [&, n = n, k = k, procs = procs](ScheduleDriver& driver) {
        Runtime rt;
        OnkSetConsensus algorithm(n, k, procs);
        for (int p = 0; p < procs; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, x);
        max_distinct =
            std::max(max_distinct, distinct_decisions(run.decisions));
      },
      500);
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_EQ(max_distinct, x);  // the bound is realized by some schedule
}

INSTANTIATE_TEST_SUITE_P(Grid, OnkSetConsensusSweep,
                         ::testing::Values(OnkScCase{2, 1, 5},
                                           OnkScCase{2, 2, 8},
                                           OnkScCase{2, 2, 7},
                                           OnkScCase{2, 3, 11},
                                           OnkScCase{3, 2, 11},
                                           OnkScCase{3, 1, 7}));

TEST(OnkFromStrongerAdapter, SequentiallyIdenticalToNativeWeakerObject) {
  // O_{2,3} used as an O_{2,2}: on identical operation sequences (driven in
  // lockstep by one process, so arrival orders trivially coincide) the
  // adapter answers exactly like a native O_{2,2}.
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    Runtime rt;
    OnkObject stronger(2, 3);
    OnkFromStronger adapted(stronger, 2);
    OnkObject reference(2, 2);
    std::vector<std::pair<int, Value>> ops;
    std::vector<int> budget{2, 5};  // capacities of components 0 and 1
    const int total = 1 + static_cast<int>(rng() % 6);
    for (int o = 0; o < total; ++o) {
      const int component = static_cast<int>(rng() % 2);
      if (budget[static_cast<std::size_t>(component)] == 0) {
        continue;  // avoid hanging the sequence
      }
      --budget[static_cast<std::size_t>(component)];
      ops.emplace_back(component, static_cast<Value>(10 + o));
    }
    rt.add_process([&](Context& ctx) {
      for (const auto& [component, v] : ops) {
        ASSERT_EQ(adapted.propose(ctx, component, v),
                  reference.propose(ctx, component, v));
      }
    });
    RoundRobinDriver driver;
    rt.run(driver);
  }
}

TEST(OnkFromStrongerAdapter, ConcurrentUseKeepsComponentSemantics) {
  // Concurrent adapter use: per component, outputs are valid proposals and
  // within the component's agreement bound — under every schedule.
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        OnkObject stronger(2, 4);
        OnkFromStronger adapted(stronger, 2);
        std::vector<Value> got(4, kBottom);
        const std::vector<Value> inputs{10, 11, 12, 13};
        for (int p = 0; p < 4; ++p) {
          rt.add_process([&, p](Context& ctx) {
            got[static_cast<std::size_t>(p)] = adapted.propose(
                ctx, /*component=*/1, inputs[static_cast<std::size_t>(p)]);
          });
        }
        rt.run(driver);
        check_validity(inputs, got);
        check_k_agreement(got, onk_component_agreement(1));
      },
      Explorer::Options{.max_executions = 200'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(OnkFromStrongerAdapter, RejectsWrongDirection) {
  OnkObject weak(2, 2);
  EXPECT_THROW(OnkFromStronger(weak, 3), SimError);
  OnkObject strong(2, 4);
  OnkFromStronger adapted(strong, 2);
  Runtime rt;
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(adapted.propose(ctx, 2, 1), SimError);  // beyond weaker k
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(OnkSeparationInSimulator, NkProcessesSeparateKFromKPlus1) {
  // The 2016 separation, executed: at N_k = nk+n+k processes, O_{n,k+1}
  // realizes agreement ≤ k+1 in the simulator while O_{n,k}'s optimal
  // construction cannot do better than k+2 (calculus) and indeed hits k+2
  // under some schedule.
  const int n = 2;
  const int k = 2;
  const int system = n * k + n + k;  // 8
  std::vector<Value> inputs;
  for (int p = 0; p < system; ++p) {
    inputs.push_back(400 + p);
  }

  int max_distinct_k1 = 0;
  auto sweep = [&](int components, int* max_distinct) {
    return RandomSweep::run(
        [&, components](ScheduleDriver& driver) {
          Runtime rt;
          OnkSetConsensus algorithm(n, components, system);
          for (int p = 0; p < system; ++p) {
            rt.add_process([&, p](Context& ctx) {
              ctx.decide(algorithm.propose(
                  ctx, p, inputs[static_cast<std::size_t>(p)]));
            });
          }
          const auto run = rt.run(driver);
          check_all_done_and_decided(run);
          check_set_consensus(run, inputs, algorithm.agreement());
          *max_distinct =
              std::max(*max_distinct, distinct_decisions(run.decisions));
        },
        600);
  };

  const auto r1 = sweep(k + 1, &max_distinct_k1);
  EXPECT_TRUE(r1.ok()) << *r1.violation;
  EXPECT_EQ(max_distinct_k1, k + 1);

  int max_distinct_k = 0;
  const auto r2 = sweep(k, &max_distinct_k);
  EXPECT_TRUE(r2.ok()) << *r2.violation;
  EXPECT_EQ(max_distinct_k, k + 2);
}

}  // namespace
}  // namespace subc
