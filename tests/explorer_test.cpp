// Tests for the exhaustive explorer and the randomized sweep: completeness
// of the schedule enumeration, violation reporting, replay, and enumeration
// of object nondeterminism.
#include "subc/runtime/explorer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "subc/objects/register.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

// Raw-enumeration count tests pin `reduction = kNone`: they assert the exact
// interleaving counts of the unreduced tree, which is precisely what the
// partial-order reduction exists to shrink (reduction_test.cpp covers the
// reduced counts and the none-vs-sleep-sets verdict equivalence).
Explorer::Options unreduced() {
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  return opts;
}

// Two processes with 1 step each: exactly C(2,1) = 2 interleavings.
TEST(Explorer, EnumeratesAllInterleavingsTwoProcessesOneStep) {
  std::set<std::vector<Value>> outcomes;
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(kBottom);
        std::vector<Value> reads(2, kBottom);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            reads[static_cast<std::size_t>(p)] = reg.read(ctx);
            reg.write(ctx, p);
          });
        }
        rt.run(driver);
        outcomes.insert(reads);
      },
      unreduced());
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  // Interleavings of (r0 w0) with (r1 w1): 4!/(2!2!) = 6 schedules.
  EXPECT_EQ(result.executions, 6);
  EXPECT_EQ(result.reduced_subtrees, 0);
  // Observable outcomes: each process reads ⊥ or the other's write.
  EXPECT_TRUE(outcomes.contains(std::vector<Value>{kBottom, kBottom}));
  EXPECT_TRUE(outcomes.contains(std::vector<Value>{kBottom, 0}));
  EXPECT_TRUE(outcomes.contains(std::vector<Value>{1, kBottom}));
}

TEST(Explorer, CountsMultinomialSchedules) {
  // 3 processes x 2 steps: 6!/(2!2!2!) = 90 schedules.
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&](Context& ctx) {
            reg.read(ctx);
            reg.read(ctx);
          });
        }
        rt.run(driver);
      },
      unreduced());
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.executions, 90);
}

TEST(Explorer, SleepSetsCollapseCommutingReadsToOneExecution) {
  // The same all-reads world under the default reduction: every pair of
  // pending steps commutes (read∥read on one register), so sleep sets leave
  // exactly one representative of the single Mazurkiewicz class.
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&](Context& ctx) {
        reg.read(ctx);
        reg.read(ctx);
      });
    }
    rt.run(driver);
  });
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.executions, 1);
  EXPECT_GT(result.reduced_subtrees, 0);
}

TEST(Explorer, EnumeratesObjectNondeterminism) {
  // One process making a 3-way choice then a 2-way choice: 6 executions.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    rt.add_process([&](Context& ctx) {
      reg.read(ctx);
      const auto a = ctx.choose(3);
      const auto b = ctx.choose(2);
      seen.insert({a, b});
    });
    rt.run(driver);
  });
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.executions, 6);
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Explorer, ReportsViolationWithReplayableTrace) {
  // Fails iff process 1 runs first; the explorer must find it and the trace
  // must replay to the same failure.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(kBottom);
    rt.add_process([&](Context& ctx) { reg.write(ctx, 1); });
    rt.add_process([&](Context& ctx) {
      if (reg.read(ctx) == kBottom) {
        throw SpecViolation("process 1 ran before process 0");
      }
    });
    rt.run(driver);
  };
  const auto result = Explorer::explore(body);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.violation->find("process 1 ran"), std::string::npos);
  EXPECT_THROW(Explorer::replay(body, result.violating_trace), SpecViolation);
}

TEST(Explorer, RespectsExecutionBudget) {
  Explorer::Options opts = unreduced();
  opts.max_executions = 10;
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        for (int p = 0; p < 4; ++p) {
          rt.add_process([&](Context& ctx) {
            for (int s = 0; s < 4; ++s) {
              reg.read(ctx);
            }
          });
        }
        rt.run(driver);
      },
      opts);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.executions, 10);
}

TEST(RandomSweep, PassesCleanBodyAndReportsSeeds) {
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        rt.add_process([&](Context& ctx) { reg.write(ctx, 1); });
        rt.run(driver);
      },
      50);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.runs, 50);
}

TEST(RandomSweep, FindsSeedDependentViolation) {
  // Violates when the random driver schedules process 1 first.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(kBottom);
        rt.add_process([&](Context& ctx) { reg.write(ctx, 1); });
        rt.add_process([&](Context& ctx) {
          if (reg.read(ctx) == kBottom) {
            throw SpecViolation("bad order");
          }
        });
        rt.run(driver);
      },
      200);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.failing_seed.has_value());
  // Replaying the same seed reproduces the failure.
  RandomDriver driver(*result.failing_seed);
  Runtime rt;
  Register<> reg(kBottom);
  rt.add_process([&](Context& ctx) { reg.write(ctx, 1); });
  rt.add_process([&](Context& ctx) {
    if (reg.read(ctx) == kBottom) {
      throw SpecViolation("bad order");
    }
  });
  EXPECT_THROW(rt.run(driver), SpecViolation);
}

TEST(Explorer, BudgetExhaustionOnViolationFreeBodyReportsIncomplete) {
  // A violation-free tree strictly larger than the budget: the result must
  // carry no violation, exactly `max_executions` executions, and
  // complete == false so callers cannot mistake the truncation for a proof.
  Explorer::Options opts = unreduced();
  opts.max_executions = 37;
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&](Context& ctx) {
            for (int s = 0; s < 3; ++s) {
              reg.read(ctx);
            }
          });
        }
        rt.run(driver);
      },
      opts);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.executions, 37);  // tree has 1680 executions
}

TEST(Explorer, ReplayRoundTripsRecordedViolatingTrace) {
  // The recorded violating trace must reproduce the identical execution: the
  // replayed decision string equals the recorded one bit-for-bit, and the
  // same violation fires.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(kBottom);
    rt.add_process([&](Context& ctx) {
      reg.read(ctx);
      reg.write(ctx, 7);
    });
    rt.add_process([&](Context& ctx) {
      if (reg.read(ctx) == 7) {
        throw SpecViolation("saw the write");
      }
      reg.read(ctx);
    });
    rt.run(driver);
  };
  const auto result = Explorer::explore(body);
  ASSERT_FALSE(result.ok());
  ASSERT_FALSE(result.violating_trace.empty());

  ReplayDriver driver(result.violating_trace);
  EXPECT_THROW(body(driver), SpecViolation);
  EXPECT_EQ(format_trace(driver.trace()), format_trace(result.violating_trace));
}

TEST(Explorer, Arity1DecisionsAreElidedFromTraces) {
  // A single process makes every decision forced (one enabled pid, no
  // object nondeterminism): one execution, empty trace.
  std::vector<ReplayDriver::Decision> trace{{9, 9}};  // must be overwritten
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    rt.add_process([&](Context& ctx) {
      for (int s = 0; s < 5; ++s) {
        reg.read(ctx);
      }
    });
    const auto run = rt.run(driver);
    ReplayDriver* replay = dynamic_cast<ReplayDriver*>(&driver);
    ASSERT_NE(replay, nullptr);
    trace = replay->trace();
    EXPECT_EQ(run.total_steps, 5);
  });
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.executions, 1);
  EXPECT_TRUE(trace.empty());
}

TEST(Explorer, PruneHookCutsSubtreesAndCountsThem) {
  // Prune everything after the first recorded decision takes option != 0:
  // only the schedules where process 0 moves first survive.
  Explorer::Options opts = unreduced();
  opts.prune = [](std::span<const ReplayDriver::Decision> prefix) {
    return prefix.size() == 1 && prefix[0].chosen != 0;
  };
  const auto pruned = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&](Context& ctx) {
            reg.read(ctx);
            reg.read(ctx);
          });
        }
        rt.run(driver);
      },
      opts);
  EXPECT_TRUE(pruned.complete);
  EXPECT_TRUE(pruned.ok());
  // Full tree: 90 executions. First decision has arity 3; two of the three
  // root subtrees (30 executions each) are cut.
  EXPECT_EQ(pruned.executions, 30);
  EXPECT_EQ(pruned.pruned_subtrees, 2);
}

TEST(Explorer, HungProcessesDoNotStallExploration) {
  // A process that hangs leaves the others enumerable.
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        rt.add_process([&](Context& ctx) {
          reg.read(ctx);
          ctx.hang();
        });
        rt.add_process([&](Context& ctx) { reg.read(ctx); });
        rt.run(driver);
      },
      unreduced());
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.executions, 1);
}

TEST(Explorer, RejectsInvalidOptions) {
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    rt.add_process([](Context&) {});
    rt.run(driver);
  };
  Explorer::Options opts;
  opts.max_executions = 0;
  EXPECT_THROW(Explorer::explore(body, opts), SimError);
  opts.max_executions = -5;
  EXPECT_THROW(Explorer::explore(body, opts), SimError);
  opts = Explorer::Options{};
  opts.frontier_depth = -1;
  EXPECT_THROW(Explorer::explore(body, opts), SimError);
  opts.threads = 4;  // validation applies regardless of the mode picked
  EXPECT_THROW(Explorer::explore(body, opts), SimError);
}

TEST(Explorer, BudgetExactlyEqualToTreeSizeReportsComplete) {
  // Boundary: the tree has exactly 6 executions. A budget of 6 exhausts the
  // tree with the last reservation, so the search is complete; 5 is not.
  // Serial and parallel must agree on both sides of the boundary.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> a(0);
    Register<> b(0);
    rt.add_process([&](Context& ctx) {
      a.write(ctx, 1);
      b.write(ctx, 1);
    });
    rt.add_process([&](Context& ctx) {
      b.write(ctx, 2);
      a.write(ctx, 2);
    });
    rt.run(driver);
  };
  for (const int threads : {1, 4}) {
    Explorer::Options opts = unreduced();
    opts.threads = threads;
    opts.max_executions = 6;
    const auto exact = Explorer::explore(body, opts);
    EXPECT_TRUE(exact.ok());
    EXPECT_TRUE(exact.complete) << "threads=" << threads;
    EXPECT_EQ(exact.executions, 6);
    opts.max_executions = 5;
    const auto short_one = Explorer::explore(body, opts);
    EXPECT_TRUE(short_one.ok());
    EXPECT_FALSE(short_one.complete) << "threads=" << threads;
    EXPECT_EQ(short_one.executions, 5);
  }
}

}  // namespace
}  // namespace subc
