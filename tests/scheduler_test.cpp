// Dedicated tests for the schedule drivers (the adversary implementations):
// round-robin ordering, scripted fallback behaviour, replay-prefix
// semantics and arity consistency, trace formatting.
#include "subc/runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>

namespace subc {
namespace {

TEST(RoundRobin, CyclesThroughEnabledPids) {
  RoundRobinDriver driver;
  const std::array<int, 3> enabled{0, 1, 2};
  EXPECT_EQ(driver.pick(enabled), 0u);
  EXPECT_EQ(driver.pick(enabled), 1u);
  EXPECT_EQ(driver.pick(enabled), 2u);
  EXPECT_EQ(driver.pick(enabled), 0u);  // wraps
}

TEST(RoundRobin, SkipsDisabledPids) {
  RoundRobinDriver driver;
  const std::array<int, 3> all{0, 1, 2};
  EXPECT_EQ(driver.pick(all), 0u);
  // pid 1 vanished: next-greater is 2 at index 1.
  const std::array<int, 2> reduced{0, 2};
  EXPECT_EQ(reduced[driver.pick(reduced)], 2);
  EXPECT_EQ(reduced[driver.pick(reduced)], 0);
}

TEST(RoundRobin, ChoiceAlwaysZero) {
  RoundRobinDriver driver;
  EXPECT_EQ(driver.choose(5), 0u);
  EXPECT_EQ(driver.choose(1), 0u);
}

TEST(Scripted, FollowsScriptWhileValid) {
  ScriptedDriver driver({2, 0, 2});
  const std::array<int, 3> enabled{0, 1, 2};
  EXPECT_EQ(enabled[driver.pick(enabled)], 2);
  EXPECT_EQ(enabled[driver.pick(enabled)], 0);
  EXPECT_EQ(enabled[driver.pick(enabled)], 2);
}

TEST(Scripted, FallsBackToFirstEnabled) {
  ScriptedDriver driver({7});  // 7 never enabled
  const std::array<int, 2> enabled{3, 5};
  EXPECT_EQ(enabled[driver.pick(enabled)], 3);
  // Script exhausted: first enabled again.
  EXPECT_EQ(enabled[driver.pick(enabled)], 3);
}

TEST(Replay, ExtendsWithFirstOptionsAndRecords) {
  ReplayDriver driver;
  const std::array<int, 3> enabled{0, 1, 2};
  EXPECT_EQ(driver.pick(enabled), 0u);
  EXPECT_EQ(driver.choose(4), 0u);
  ASSERT_EQ(driver.trace().size(), 2u);
  EXPECT_EQ(driver.trace()[0].arity, 3u);
  EXPECT_EQ(driver.trace()[1].arity, 4u);
}

TEST(Replay, ReplaysPrefixThenExtends) {
  std::vector<ReplayDriver::Decision> prefix{{2, 3}, {1, 2}};
  ReplayDriver driver(prefix);
  const std::array<int, 3> three{0, 1, 2};
  const std::array<int, 2> two{0, 1};
  EXPECT_EQ(driver.pick(three), 2u);
  EXPECT_EQ(driver.choose(2), 1u);
  EXPECT_EQ(driver.pick(two), 0u);  // beyond prefix: first option
  EXPECT_EQ(driver.trace().size(), 3u);
}

TEST(Replay, DetectsArityDrift) {
  // If the world is not deterministic given the decision string, the
  // recorded arity will not match — that must be loud, not silent.
  std::vector<ReplayDriver::Decision> prefix{{0, 3}};
  ReplayDriver driver(prefix);
  const std::array<int, 2> two{0, 1};  // arity 2, recorded 3
  EXPECT_THROW(driver.pick(two), SimError);
}

TEST(Replay, RejectsOutOfRangeChosen) {
  std::vector<ReplayDriver::Decision> prefix{{5, 3}};
  ReplayDriver driver(prefix);
  const std::array<int, 3> three{0, 1, 2};
  EXPECT_THROW(driver.pick(three), SimError);
}

TEST(Random, SameSeedSameDecisions) {
  RandomDriver a(99);
  RandomDriver b(99);
  const std::array<int, 4> enabled{0, 1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.pick(enabled), b.pick(enabled));
    EXPECT_EQ(a.choose(7), b.choose(7));
  }
}

TEST(Random, ChoicesStayInRange) {
  RandomDriver driver(5);
  const std::array<int, 3> enabled{0, 1, 2};
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(driver.pick(enabled), 3u);
    EXPECT_LT(driver.choose(4), 4u);
  }
}

TEST(FormatTrace, RendersDecisions) {
  std::vector<ReplayDriver::Decision> trace{{0, 2}, {1, 3}};
  EXPECT_EQ(format_trace(trace), "0/2 1/3");
  EXPECT_EQ(format_trace({}), "");
}

}  // namespace
}  // namespace subc
