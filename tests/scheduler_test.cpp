// Dedicated tests for the schedule drivers (the adversary implementations):
// round-robin ordering, scripted fallback behaviour, replay-prefix
// semantics and arity consistency, trace formatting.
#include "subc/runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>

namespace subc {
namespace {

TEST(RoundRobin, CyclesThroughEnabledPids) {
  RoundRobinDriver driver;
  const std::array<int, 3> enabled{0, 1, 2};
  EXPECT_EQ(driver.pick(enabled), 0u);
  EXPECT_EQ(driver.pick(enabled), 1u);
  EXPECT_EQ(driver.pick(enabled), 2u);
  EXPECT_EQ(driver.pick(enabled), 0u);  // wraps
}

TEST(RoundRobin, SkipsDisabledPids) {
  RoundRobinDriver driver;
  const std::array<int, 3> all{0, 1, 2};
  EXPECT_EQ(driver.pick(all), 0u);
  // pid 1 vanished: next-greater is 2 at index 1.
  const std::array<int, 2> reduced{0, 2};
  EXPECT_EQ(reduced[driver.pick(reduced)], 2);
  EXPECT_EQ(reduced[driver.pick(reduced)], 0);
}

TEST(RoundRobin, ChoiceAlwaysZero) {
  RoundRobinDriver driver;
  EXPECT_EQ(driver.choose(5), 0u);
  EXPECT_EQ(driver.choose(1), 0u);
}

TEST(Scripted, FollowsScriptWhileValid) {
  ScriptedDriver driver({2, 0, 2});
  const std::array<int, 3> enabled{0, 1, 2};
  EXPECT_EQ(enabled[driver.pick(enabled)], 2);
  EXPECT_EQ(enabled[driver.pick(enabled)], 0);
  EXPECT_EQ(enabled[driver.pick(enabled)], 2);
}

TEST(Scripted, FallsBackToFirstEnabled) {
  ScriptedDriver driver({7});  // 7 never enabled
  const std::array<int, 2> enabled{3, 5};
  EXPECT_EQ(enabled[driver.pick(enabled)], 3);
  // Script exhausted: first enabled again.
  EXPECT_EQ(enabled[driver.pick(enabled)], 3);
}

TEST(Replay, ExtendsWithFirstOptionsAndRecords) {
  ReplayDriver driver;
  const std::array<int, 3> enabled{0, 1, 2};
  EXPECT_EQ(driver.pick(enabled), 0u);
  EXPECT_EQ(driver.choose(4), 0u);
  ASSERT_EQ(driver.trace().size(), 2u);
  EXPECT_EQ(driver.trace()[0].arity, 3u);
  EXPECT_EQ(driver.trace()[1].arity, 4u);
}

TEST(Replay, ReplaysPrefixThenExtends) {
  std::vector<ReplayDriver::Decision> prefix{{2, 3}, {1, 2}};
  ReplayDriver driver(prefix);
  const std::array<int, 3> three{0, 1, 2};
  const std::array<int, 2> two{0, 1};
  EXPECT_EQ(driver.pick(three), 2u);
  EXPECT_EQ(driver.choose(2), 1u);
  EXPECT_EQ(driver.pick(two), 0u);  // beyond prefix: first option
  EXPECT_EQ(driver.trace().size(), 3u);
}

TEST(Replay, DetectsArityDrift) {
  // If the world is not deterministic given the decision string, the
  // recorded arity will not match — that must be loud, not silent.
  std::vector<ReplayDriver::Decision> prefix{{0, 3}};
  ReplayDriver driver(prefix);
  const std::array<int, 2> two{0, 1};  // arity 2, recorded 3
  EXPECT_THROW(driver.pick(two), SimError);
}

TEST(Replay, RejectsOutOfRangeChosen) {
  std::vector<ReplayDriver::Decision> prefix{{5, 3}};
  ReplayDriver driver(prefix);
  const std::array<int, 3> three{0, 1, 2};
  EXPECT_THROW(driver.pick(three), SimError);
}

TEST(Replay, EmptyEnabledSetIsALoudError) {
  // A pick with nothing enabled can only come from a kernel bug or a driver
  // misuse; it must throw SimError, never index into an empty span.
  ReplayDriver driver;
  EXPECT_THROW(driver.pick(std::span<const int>{}), SimError);
}

TEST(Replay, ChooseArityZeroIsALoudError) {
  ReplayDriver driver;
  EXPECT_THROW(driver.choose(0), SimError);
  // The guard must not corrupt the driver: a legal choice still works.
  EXPECT_EQ(driver.choose(2), 0u);
  EXPECT_EQ(driver.trace().size(), 1u);
}

TEST(Replay, SleepSetSkipsCommutingOptionOnAdvance) {
  // Two enabled processes whose pending steps are reads of the same object:
  // after exploring pid 0 first, pid 1's branch is equivalent (read∥read
  // commutes) — replaying the recorded decision keeps the stored metadata so
  // the explorer's advance() can prove the sibling redundant.
  ReplayDriver driver;
  driver.set_reduction(true);
  const std::array<int, 2> enabled{0, 1};
  const std::array<Access, 2> fps{Access{7, AccessKind::kRead},
                                  Access{7, AccessKind::kRead}};
  EXPECT_EQ(driver.pick(enabled, fps), 0u);
  ASSERT_EQ(driver.trace().size(), 1u);
  const ReplayDriver::Decision d = driver.trace()[0];
  EXPECT_EQ(d.enabled, 0b11u);
  EXPECT_EQ(d.sleep, 0u);
  EXPECT_EQ(driver.reduced(), 0);
}

TEST(Replay, DependentFootprintsRecordNoSleepers) {
  // A write∥write conflict on one object: granting pid 1 second does NOT put
  // the earlier sibling pid 0 to sleep, because the two steps do not commute
  // — its subtree may reach schedules the pid-0-first branch cannot.
  std::vector<ReplayDriver::Decision> prefix{{1, 2, 0b11, 0}};
  ReplayDriver driver(std::move(prefix));
  driver.set_reduction(true);
  const std::array<int, 2> enabled{0, 1};
  const std::array<Access, 2> fps{Access{3, AccessKind::kWrite},
                                  Access{3, AccessKind::kWrite}};
  EXPECT_EQ(driver.pick(enabled, fps), 1u);
  // Fresh decision below: pid 0 is awake, so it is explored, not skipped.
  EXPECT_EQ(driver.pick(enabled, fps), 0u);
  EXPECT_EQ(driver.trace()[1].sleep, 0u);
  EXPECT_EQ(driver.reduced(), 0);
}

TEST(Replay, IndependentSiblingFallsAsleepBelowTheGrantedStep) {
  // Replaying a bumped decision {chosen=1}: pid 0's subtree was explored by
  // the earlier sibling branch, and its pending step (write obj 3) commutes
  // with the granted one (write obj 9) — so pid 0 sleeps below this node and
  // the next fresh decision skips straight past it.
  std::vector<ReplayDriver::Decision> prefix{{1, 2, 0b11, 0}};
  ReplayDriver driver(std::move(prefix));
  driver.set_reduction(true);
  const std::array<int, 2> enabled{0, 1};
  const std::array<Access, 2> fps{Access{3, AccessKind::kWrite},
                                  Access{9, AccessKind::kWrite}};
  EXPECT_EQ(driver.pick(enabled, fps), 1u);
  // pid 0 (the earlier sibling, independent of the granted step) now sleeps:
  // a fresh decision with both enabled and pid 0 still independent skips
  // straight to pid 1.
  const std::array<Access, 2> next{Access{3, AccessKind::kWrite},
                                   Access{9, AccessKind::kRead}};
  EXPECT_EQ(driver.pick(enabled, next), 1u);
  EXPECT_EQ(driver.reduced(), 1);
  ASSERT_EQ(driver.trace().size(), 2u);
  EXPECT_EQ(driver.trace()[1].sleep, 0b01u);
}

TEST(Random, SameSeedSameDecisions) {
  RandomDriver a(99);
  RandomDriver b(99);
  const std::array<int, 4> enabled{0, 1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.pick(enabled), b.pick(enabled));
    EXPECT_EQ(a.choose(7), b.choose(7));
  }
}

TEST(Random, ChoicesStayInRange) {
  RandomDriver driver(5);
  const std::array<int, 3> enabled{0, 1, 2};
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(driver.pick(enabled), 3u);
    EXPECT_LT(driver.choose(4), 4u);
  }
}

TEST(FormatTrace, RendersDecisions) {
  std::vector<ReplayDriver::Decision> trace{{0, 2}, {1, 3}};
  EXPECT_EQ(format_trace(trace), "0/2 1/3");
  EXPECT_EQ(format_trace({}), "");
}

}  // namespace
}  // namespace subc
