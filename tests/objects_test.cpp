// Unit tests for the atomic base objects: registers, counters, test&set,
// swap, fetch&add, queue, consensus and set-consensus objects, strong set
// election.
#include <gtest/gtest.h>

#include <set>

#include "subc/objects/consensus_object.hpp"
#include "subc/objects/counter.hpp"
#include "subc/objects/election_object.hpp"
#include "subc/objects/fetch_add.hpp"
#include "subc/objects/queue.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/objects/snapshot.hpp"
#include "subc/objects/swap.hpp"
#include "subc/objects/test_and_set.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

// Convenience: run a single-process world.
template <class Body>
Runtime::RunResult solo(Body body) {
  Runtime rt;
  rt.add_process([&](Context& ctx) { body(ctx); });
  RoundRobinDriver driver;
  return rt.run(driver);
}

TEST(Register, ReadsBackWrites) {
  Register<> reg(kBottom);
  solo([&](Context& ctx) {
    EXPECT_EQ(reg.read(ctx), kBottom);
    reg.write(ctx, 5);
    EXPECT_EQ(reg.read(ctx), 5);
  });
}

TEST(RegisterArray, IndependentCells) {
  RegisterArray<> regs(3, kBottom);
  solo([&](Context& ctx) {
    regs[0].write(ctx, 1);
    regs[2].write(ctx, 3);
    EXPECT_EQ(regs[0].read(ctx), 1);
    EXPECT_EQ(regs[1].read(ctx), kBottom);
    EXPECT_EQ(regs[2].read(ctx), 3);
  });
  EXPECT_THROW(regs[3], SimError);
  EXPECT_THROW(regs[-1], SimError);
}

TEST(Counter, IncrementAndRead) {
  Counter counter;
  solo([&](Context& ctx) {
    EXPECT_EQ(counter.read(ctx), 0);
    counter.increment(ctx);
    counter.increment(ctx);
    EXPECT_EQ(counter.read(ctx), 2);
  });
}

TEST(TestAndSet, ExactlyOneWinnerUnderAllSchedules) {
  const auto result = Explorer::explore([](ScheduleDriver& driver) {
    Runtime rt;
    TestAndSet tas;
    std::vector<bool> won(3, false);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        won[static_cast<std::size_t>(p)] = !tas.test_and_set(ctx);
      });
    }
    rt.run(driver);
    int winners = 0;
    for (const bool w : won) {
      winners += w ? 1 : 0;
    }
    if (winners != 1) {
      throw SpecViolation("test&set winners != 1");
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(Swap, ExchangesValues) {
  SwapRegister swap(kBottom);
  solo([&](Context& ctx) {
    EXPECT_EQ(swap.swap(ctx, 1), kBottom);
    EXPECT_EQ(swap.swap(ctx, 2), 1);
    EXPECT_EQ(swap.read(ctx), 2);
  });
}

TEST(FetchAdd, ReturnsPreviousValue) {
  FetchAdd fa(10);
  solo([&](Context& ctx) {
    EXPECT_EQ(fa.fetch_add(ctx, 5), 10);
    EXPECT_EQ(fa.fetch_add(ctx, -3), 15);
    EXPECT_EQ(fa.read(ctx), 12);
  });
}

TEST(FifoQueue, FifoOrderAndEmptyBottom) {
  FifoQueue queue;
  solo([&](Context& ctx) {
    EXPECT_EQ(queue.dequeue(ctx), kBottom);
    queue.enqueue(ctx, 1);
    queue.enqueue(ctx, 2);
    EXPECT_EQ(queue.dequeue(ctx), 1);
    EXPECT_EQ(queue.dequeue(ctx), 2);
    EXPECT_EQ(queue.dequeue(ctx), kBottom);
  });
}

TEST(FifoQueue, SupportsPreloadedTokens) {
  FifoQueue queue{7};
  solo([&](Context& ctx) {
    EXPECT_EQ(queue.dequeue(ctx), 7);
    EXPECT_EQ(queue.dequeue(ctx), kBottom);
  });
}

TEST(AtomicSnapshotObject, ScanSeesAllUpdates) {
  AtomicSnapshot<> snap(3, kBottom);
  solo([&](Context& ctx) {
    snap.update(ctx, 0, 10);
    snap.update(ctx, 2, 30);
    const auto view = snap.scan(ctx);
    EXPECT_EQ(view, (std::vector<Value>{10, kBottom, 30}));
  });
}

TEST(ConsensusObject, FirstProposalWins) {
  ConsensusObject cons(3);
  solo([&](Context& ctx) {
    EXPECT_EQ(cons.propose(ctx, 42), 42);
    EXPECT_EQ(cons.propose(ctx, 7), 42);
    EXPECT_EQ(cons.propose(ctx, 9), 42);
  });
}

TEST(ConsensusObject, HangsBeyondCapacity) {
  Runtime rt;
  ConsensusObject cons(1);
  rt.add_process([&](Context& ctx) { cons.propose(ctx, 1); });
  rt.add_process([&](Context& ctx) { cons.propose(ctx, 2); });
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kDone);
  EXPECT_EQ(result.states[1], ProcState::kHung);
}

TEST(ConsensusObject, RejectsBadParameters) {
  EXPECT_THROW(ConsensusObject(0), SimError);
  ConsensusObject cons(1);
  solo([&](Context& ctx) {
    EXPECT_THROW(cons.propose(ctx, kBottom), SimError);
  });
}

TEST(SetConsensusObject, AllBehavioursSatisfyTheSpec) {
  // Exhaustively drive a (3,2)-set-consensus object with 3 distinct
  // proposals: under every schedule and every nondeterministic resolution,
  // outputs are valid proposals and take at most 2 distinct values.
  const auto result = Explorer::explore([](ScheduleDriver& driver) {
    Runtime rt;
    SetConsensusObject sc(3, 2);
    const std::vector<Value> inputs{10, 20, 30};
    std::vector<Value> outputs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        outputs[static_cast<std::size_t>(p)] =
            sc.propose(ctx, inputs[static_cast<std::size_t>(p)]);
      });
    }
    rt.run(driver);
    std::set<Value> distinct;
    for (int p = 0; p < 3; ++p) {
      const Value out = outputs[static_cast<std::size_t>(p)];
      if (std::find(inputs.begin(), inputs.end(), out) == inputs.end()) {
        throw SpecViolation("set-consensus output not a proposal");
      }
      distinct.insert(out);
    }
    if (distinct.size() > 2) {
      throw SpecViolation("more than k distinct outputs");
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(SetConsensusObject, AdversaryCanRealizeKDistinctOutputs) {
  // The bound k is tight: some behaviour produces 2 distinct outputs.
  int max_distinct = 0;
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    SetConsensusObject sc(3, 2);
    std::vector<Value> outputs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        outputs[static_cast<std::size_t>(p)] = sc.propose(ctx, p + 1);
      });
    }
    rt.run(driver);
    std::set<Value> distinct(outputs.begin(), outputs.end());
    max_distinct = std::max(max_distinct, static_cast<int>(distinct.size()));
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(max_distinct, 2);
}

TEST(SetConsensusObject, HangsBeyondN) {
  Runtime rt;
  SetConsensusObject sc(2, 1);
  std::vector<ProcState> expected;
  for (int p = 0; p < 3; ++p) {
    rt.add_process([&, p](Context& ctx) { sc.propose(ctx, p); });
  }
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kDone);
  EXPECT_EQ(result.states[1], ProcState::kDone);
  EXPECT_EQ(result.states[2], ProcState::kHung);
}

TEST(StrongSetElectionObject, AllBehavioursSatisfyStrongElection) {
  // (3,2)-strong set election: ≤2 winners, self-election, validity — under
  // every schedule and adversary choice.
  const auto result = Explorer::explore([](ScheduleDriver& driver) {
    Runtime rt;
    StrongSetElectionObject sse(3, 2);
    std::vector<Value> elected(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        elected[static_cast<std::size_t>(p)] =
            sse.invoke(ctx, static_cast<Value>(p));
      });
    }
    rt.run(driver);
    std::set<Value> distinct;
    for (int p = 0; p < 3; ++p) {
      const Value e = elected[static_cast<std::size_t>(p)];
      if (e < 0 || e > 2) {
        throw SpecViolation("elected a non-participant");
      }
      if (elected[static_cast<std::size_t>(e)] != e) {
        throw SpecViolation("self-election violated");
      }
      distinct.insert(e);
    }
    if (distinct.size() > 2) {
      throw SpecViolation("more than k distinct winners");
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(StrongSetElectionObject, FirstInvokerCanAlwaysSelfElect) {
  StrongSetElectionObject sse(3, 2);
  solo([&](Context& ctx) { EXPECT_EQ(sse.invoke(ctx, 5), 5); });
}

TEST(ObjectParameterValidation, RejectsIllegalConstructions) {
  EXPECT_THROW(SetConsensusObject(2, 2), SimError);
  EXPECT_THROW(SetConsensusObject(2, 0), SimError);
  EXPECT_THROW(StrongSetElectionObject(2, 3), SimError);
  EXPECT_THROW((AtomicSnapshot<>(0, kBottom)), SimError);
  EXPECT_THROW((RegisterArray<>(0, kBottom)), SimError);
}

}  // namespace
}  // namespace subc
