// The stepped execution engine (runtime/stepper.hpp) and the mixed-engine
// kernel: stepped and fiber processes sharing one world must explore
// identically to the all-fiber twin, bodies that do not flatten (recursion
// over shared ops) stay on fibers beside stepped neighbours, violating
// mixed-engine traces replay and shrink, state blocks are torn down, and
// the kernel diagnoses stepped bodies that forget to suspend.
#include <gtest/gtest.h>

#include <array>

#include "subc/algorithms/stepped_bodies.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/stepper.hpp"

namespace subc {
namespace {

// ---------------------------------------------------------------------------
// Mixed-engine equivalence: the same conflicting-writes world hosted
// all-fiber, all-stepped, and half-and-half must produce bit-identical
// exhaustive results.

ExecutionBody conflict_world(bool stepped_mask[3]) {
  const std::array<bool, 3> mask{stepped_mask[0], stepped_mask[1],
                                 stepped_mask[2]};
  return [mask](ScheduleDriver& driver) {
    Runtime rt;
    Register<> shared(0);
    RegisterArray<> own(3, 0);
    for (int p = 0; p < 3; ++p) {
      if (mask[static_cast<std::size_t>(p)]) {
        rt.add_stepped(SteppedMixedWriter{&own[p], &shared, p, 2});
      } else {
        rt.add_process([&, p](Context& ctx) {
          for (int s = 0; s < 2; ++s) {
            if (s % 2 == 0) {
              own[p].write(ctx, s);
            } else {
              shared.write(ctx, p);
            }
          }
        });
      }
    }
    rt.run(driver);
  };
}

TEST(SteppedEngine, MixedEngineWorldsExploreIdentically) {
  bool all_fiber[3] = {false, false, false};
  bool all_stepped[3] = {true, true, true};
  bool mixed[3] = {false, true, false};
  for (const Reduction reduction :
       {Reduction::kNone, Reduction::kSleepSets}) {
    Explorer::Options opts;
    opts.reduction = reduction;
    const auto fiber = Explorer::explore(conflict_world(all_fiber), opts);
    ASSERT_TRUE(fiber.ok());
    ASSERT_TRUE(fiber.complete);
    for (bool* mask : {all_stepped, mixed}) {
      const auto other = Explorer::explore(conflict_world(mask), opts);
      EXPECT_TRUE(other.ok());
      EXPECT_TRUE(other.complete);
      EXPECT_EQ(other.executions, fiber.executions);
      EXPECT_EQ(other.reduced_subtrees, fiber.reduced_subtrees);
    }
  }
}

// ---------------------------------------------------------------------------
// The fallback rule: a body whose shared-op sequence lives in recursion
// cannot flatten into a switch-resume machine — it stays on the fiber
// engine, and mixes freely with stepped neighbours in the same world.

void recursive_reads(Context& ctx, Register<>& reg, int depth) {
  if (depth == 0) {
    return;
  }
  reg.read(ctx);
  recursive_reads(ctx, reg, depth - 1);
}

TEST(SteppedEngine, FiberFallbackBodyBesideSteppedProcess) {
  const auto body_with = [](bool stepped_reader) {
    return ExecutionBody([stepped_reader](ScheduleDriver& driver) {
      Runtime rt;
      Register<> reg(0);
      rt.add_process([&](Context& ctx) { recursive_reads(ctx, reg, 3); });
      if (stepped_reader) {
        rt.add_stepped(SteppedRegisterReader{&reg, 3});
      } else {
        rt.add_process([&](Context& ctx) {
          for (int s = 0; s < 3; ++s) {
            reg.read(ctx);
          }
        });
      }
      rt.run(driver);
    });
  };
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  const auto fiber = Explorer::explore(body_with(false), opts);
  const auto mixed = Explorer::explore(body_with(true), opts);
  ASSERT_TRUE(fiber.ok());
  ASSERT_TRUE(mixed.ok());
  EXPECT_TRUE(fiber.complete);
  EXPECT_TRUE(mixed.complete);
  EXPECT_EQ(mixed.executions, fiber.executions);
}

// The register-built-snapshot configuration of Algorithm 5 is the flagship
// non-flattening body (helper calls looping over per-cell registers); its
// SteppedOp refuses it with a SimError pointing at the fallback rule.
TEST(SteppedEngine, RegisterSnapshotAlgorithm5StaysOnFibers) {
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    WrnFromSse object(3, /*use_register_snapshots=*/true);
    Value out = kBottom;
    rt.add_stepped(
        WrnFromSse::SteppedOp{&object, /*index=*/0, /*value=*/7,
                              /*history=*/nullptr, &out});
    rt.run(driver);
  };
  Explorer::Options opts;
  opts.max_executions = 4;
  const auto result = Explorer::explore(body, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.violation->find("fiber engine"), std::string::npos)
      << *result.violation;
}

// ...while the atomic-snapshot configuration explores identically on either
// engine, including the hang semantics of SSE election and the doorway.
TEST(SteppedEngine, Algorithm5SteppedMatchesFiber) {
  const auto body_with = [](bool stepped) {
    return ExecutionBody([stepped](ScheduleDriver& driver) {
      Runtime rt;
      WrnFromSse object(3);
      std::array<Value, 2> out{kBottom, kBottom};
      // Two of the three ports: enough to cover the doorway, the election
      // (winner and adopter), and both snapshot paths, while the unreduced
      // tree stays exhaustively explorable in test time.
      for (int p = 0; p < 2; ++p) {
        if (stepped) {
          rt.add_stepped(WrnFromSse::SteppedOp{
              &object, p, 100 + p, nullptr,
              &out[static_cast<std::size_t>(p)]});
        } else {
          rt.add_process([&, p](Context& ctx) {
            out[static_cast<std::size_t>(p)] =
                object.one_shot_wrn(ctx, p, 100 + p);
          });
        }
      }
      rt.run(driver);
      for (const Value v : out) {
        if (v != kBottom && (v < 100 || v > 102)) {
          throw SpecViolation("Algorithm 5 returned a never-written value");
        }
      }
    });
  };
  for (const Reduction reduction :
       {Reduction::kNone, Reduction::kSleepSets}) {
    Explorer::Options opts;
    opts.reduction = reduction;
    opts.max_executions = 2'000'000;
    const auto fiber = Explorer::explore(body_with(false), opts);
    const auto stepped = Explorer::explore(body_with(true), opts);
    ASSERT_TRUE(fiber.ok()) << *fiber.violation;
    ASSERT_TRUE(stepped.ok()) << *stepped.violation;
    EXPECT_TRUE(fiber.complete);
    EXPECT_TRUE(stepped.complete);
    EXPECT_EQ(stepped.executions, fiber.executions);
    EXPECT_EQ(stepped.reduced_subtrees, fiber.reduced_subtrees);
  }
}

// ---------------------------------------------------------------------------
// Replay + shrink over a mixed-engine world: a violating trace found by the
// explorer must replay (re-raising the violation) and delta-debug to a
// minimal reproducer that still replays, with a stepped process involved.

ExecutionBody violating_mixed_world() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> shared(0);
    Register<> own(0);
    Value seen = kBottom;
    rt.add_stepped(SteppedMixedWriter{&own, &shared, /*pid=*/7, /*steps=*/2});
    rt.add_process([&](Context& ctx) { seen = shared.read(ctx); });
    rt.run(driver);
    if (seen == 7) {
      throw SpecViolation("reader observed the stepped write");
    }
  };
}

TEST(SteppedEngine, MixedEngineViolationReplaysAndShrinks) {
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  const auto result = Explorer::explore(violating_mixed_world(), opts);
  ASSERT_FALSE(result.ok());
  ASSERT_FALSE(result.violating_trace.empty());
  EXPECT_THROW(Explorer::replay(violating_mixed_world(),
                                result.violating_trace),
               SpecViolation);
  const auto shrunk =
      Explorer::shrink(violating_mixed_world(), result.violating_trace);
  EXPECT_LE(shrunk.size(), result.violating_trace.size());
  EXPECT_THROW(Explorer::replay(violating_mixed_world(), shrunk),
               SpecViolation);
}

// ---------------------------------------------------------------------------
// Kernel contracts.

TEST(SteppedEngine, StateBlockDestructorRunsAtWorldTeardown) {
  struct DtorProbe {
    Register<>* reg;
    int* destroyed;
    DtorProbe(Register<>* r, int* d) : reg(r), destroyed(d) {}
    DtorProbe(DtorProbe&& o) noexcept : reg(o.reg), destroyed(o.destroyed) {
      o.destroyed = nullptr;
    }
    ~DtorProbe() {
      if (destroyed != nullptr) {
        ++*destroyed;
      }
    }
    void step(StepContext& ctx) {
      SUBC_STEP_BEGIN(ctx);
      SUBC_STEP_POINT(ctx, reg->oid(), AccessKind::kRead);
      static_cast<void>(reg->step_read(ctx));
      SUBC_STEP_END(ctx);
    }
  };
  int destroyed = 0;
  {
    Runtime rt;
    Register<> reg(0);
    rt.add_stepped(DtorProbe(&reg, &destroyed));
    RoundRobinDriver driver;
    rt.run(driver);
    EXPECT_EQ(destroyed, 0);  // block lives as long as the world
  }
  EXPECT_EQ(destroyed, 1);  // exactly the arena block, not the moved-from temp
}

TEST(SteppedEngine, BodyForgettingToSuspendIsDiagnosed) {
  struct Runaway {
    void step(StepContext& /*ctx*/) {}  // returns without suspend/finish
  };
  Runtime rt;
  rt.add_stepped(Runaway{});
  RoundRobinDriver driver;
  EXPECT_THROW(rt.run(driver), SimError);
}

TEST(SteppedEngine, AddSteppedAfterRunStartedThrows) {
  Runtime rt;
  Register<> reg(0);
  rt.add_stepped(SteppedRegisterReader{&reg, 1});
  RoundRobinDriver driver;
  rt.run(driver);
  EXPECT_THROW(rt.add_stepped(SteppedRegisterReader{&reg, 1}), SimError);
}

TEST(SteppedEngine, SteppedStateBlocksAreArenaCarved) {
  const AllocCounters before = alloc_counters();
  {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < 4; ++p) {
      rt.add_stepped(SteppedRegisterReader{&reg, 2});
    }
    RoundRobinDriver driver;
    rt.run(driver);
  }
  const AllocCounters after = alloc_counters();
  EXPECT_EQ(after.stepped_blocks_carved - before.stepped_blocks_carved, 4u);
  EXPECT_GE(after.stepped_block_bytes - before.stepped_block_bytes,
            4 * sizeof(SteppedRegisterReader));
}

}  // namespace
}  // namespace subc
