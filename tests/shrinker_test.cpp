// The schedule shrinker: delta-debugging violating decision strings down to
// locally-minimal reproducers, verified by replay.
#include <gtest/gtest.h>

#include "subc/objects/register.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

using Decision = ReplayDriver::Decision;

// A world whose violation needs one specific "bad" scheduling choice late
// in the run: p1 must read r after p0's second write. Random seeds find it
// with lots of irrelevant decisions in front; the minimal reproducer is
// much shorter.
ExecutionBody late_bug_world() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> noise(2, kBottom);
    Register<Value> r(0);
    Value seen = -1;
    rt.add_process([&](Context& ctx) {
      // Irrelevant decisions to give the shrinker something to cut.
      for (int i = 0; i < 3; ++i) {
        noise[0].write(ctx, i);
      }
      r.write(ctx, 1);
      r.write(ctx, 2);
    });
    rt.add_process([&](Context& ctx) {
      for (int i = 0; i < 3; ++i) {
        noise[1].write(ctx, i);
      }
      seen = r.read(ctx);
    });
    rt.run(driver);
    if (seen == 2) {
      throw SpecViolation("p1 observed the second write");
    }
  };
}

// Returns the violation message of replaying `trace`, if any.
std::optional<std::string> replay_outcome(const ExecutionBody& body,
                                          std::vector<Decision> trace) {
  try {
    Explorer::replay(body, std::move(trace));
  } catch (const std::exception& e) {
    return std::string(e.what());
  }
  return std::nullopt;
}

bool lex_less_or_eq(const std::vector<Decision>& a,
                    const std::vector<Decision>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].chosen != b[i].chosen) {
      return a[i].chosen < b[i].chosen;
    }
  }
  return a.size() <= b.size();
}

// Checks local minimality directly against the definition: no truncation
// and no single lowering (suffix dropped) still fails.
void expect_locally_minimal(const ExecutionBody& body,
                            const std::vector<Decision>& trace) {
  for (std::size_t len = 0; len < trace.size(); ++len) {
    std::vector<Decision> cand(trace.begin(),
                               trace.begin() + static_cast<std::ptrdiff_t>(len));
    for (Decision& d : cand) {
      d.enabled = 0;
      d.sleep = 0;
    }
    ReplayDriver driver(cand);
    bool failed = false;
    try {
      body(driver);
    } catch (const std::exception&) {
      failed = true;
    }
    if (failed) {
      // A shorter prefix that still fails must canonicalize to the trace
      // itself (its zero-extension is the minimal reproducer already).
      EXPECT_TRUE(lex_less_or_eq(trace, driver.trace()))
          << "truncation to " << len << " gives a smaller reproducer";
    }
  }
  for (std::size_t pos = 0; pos < trace.size(); ++pos) {
    for (std::uint32_t v = 0; v < trace[pos].chosen; ++v) {
      std::vector<Decision> cand(
          trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(pos) + 1);
      cand[pos].chosen = v;
      for (Decision& d : cand) {
        d.enabled = 0;
        d.sleep = 0;
      }
      ReplayDriver driver(std::move(cand));
      bool failed = false;
      try {
        body(driver);
      } catch (const std::exception&) {
        failed = true;
      }
      EXPECT_FALSE(failed) << "lowering position " << pos << " to " << v
                           << " still fails: not locally minimal";
    }
  }
}

TEST(Shrinker, SeededViolationShrinksAndReplays) {
  const ExecutionBody body = late_bug_world();
  // Find a violating trace with the unreduced exhaustive search (its first
  // hit is already lex-least, so shrink from a random find instead: sweep
  // seeds until one fails, replay it under a ReplayDriver to capture the
  // decision string).
  const auto sweep = RandomSweep::run(body, 500);
  ASSERT_FALSE(sweep.ok()) << "expected some random seed to hit the bug";

  // Capture the violating decision string by re-running the failing seed
  // under a recording ReplayDriver... the explorer already does exactly
  // this, so use it with shrinking enabled and a violation-first order.
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  opts.shrink_violations = true;
  const auto result = Explorer::explore(body, opts);
  ASSERT_FALSE(result.ok());

  // The shrunken trace still reproduces the violation...
  const auto replayed = replay_outcome(body, result.violating_trace);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, *result.violation);
  // ...and is locally minimal by the definition.
  expect_locally_minimal(body, result.violating_trace);
}

TEST(Shrinker, ShrinkIsIdempotent) {
  const ExecutionBody body = late_bug_world();
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  const auto result = Explorer::explore(body, opts);
  ASSERT_FALSE(result.ok());
  const auto once = Explorer::shrink(body, result.violating_trace);
  const auto twice = Explorer::shrink(body, once);
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].chosen, twice[i].chosen) << "position " << i;
    EXPECT_EQ(once[i].arity, twice[i].arity) << "position " << i;
  }
}

TEST(Shrinker, ShrinksReductionRecordedTraces) {
  // Traces recorded under sleep-set reduction carry enabled/sleep metadata;
  // the shrinker must strip it and still produce a locally-minimal
  // reproducer.
  const ExecutionBody body = late_bug_world();
  Explorer::Options opts;
  opts.reduction = Reduction::kSleepSets;
  const auto result = Explorer::explore(body, opts);
  ASSERT_FALSE(result.ok());
  const auto shrunk = Explorer::shrink(body, result.violating_trace);
  EXPECT_TRUE(replay_outcome(body, shrunk).has_value());
  expect_locally_minimal(body, shrunk);
}

TEST(Shrinker, CleanTraceReturnedCanonicalized) {
  // A non-violating trace is handed back (canonical form) unchanged in
  // meaning: replaying it still succeeds.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
    }
    rt.run(driver);
  };
  const auto shrunk = Explorer::shrink(body, {});
  EXPECT_FALSE(replay_outcome(body, shrunk).has_value());
}

TEST(Shrinker, MinimizesObjectNondeterminismToo) {
  // The violation needs choose() == 1 at the set-consensus object; the
  // shrinker must keep that decision while zeroing the schedule noise.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    SetConsensusObject obj(3, 2);
    std::array<Value, 2> got{kBottom, kBottom};
    rt.add_process([&](Context& ctx) { got[0] = obj.propose(ctx, 10); });
    rt.add_process([&](Context& ctx) { got[1] = obj.propose(ctx, 20); });
    rt.run(driver);
    if (got[0] != kBottom && got[1] != kBottom && got[0] != got[1]) {
      throw SpecViolation("the two proposes disagreed");
    }
  };
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  opts.shrink_violations = true;
  const auto result = Explorer::explore(body, opts);
  ASSERT_FALSE(result.ok());  // k=2 set consensus may disagree
  const auto replayed = replay_outcome(body, result.violating_trace);
  ASSERT_TRUE(replayed.has_value());
  expect_locally_minimal(body, result.violating_trace);
}

}  // namespace
}  // namespace subc
