// Tests for the valence-analysis object models themselves (WrnModel,
// GacModel): state-space sizes, the hang convention, and — critically — the
// bisimulation property of GacModel's canonical key: states with equal keys
// must produce identical responses for every future operation sequence.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "subc/core/consensus_number.hpp"

namespace subc {
namespace {

TEST(WrnModel, StateAndOpCounts) {
  const WrnModel model{3, {1, 2}};
  // (|domain|+1)^k slot assignments; k × |domain| ops.
  EXPECT_EQ(model.states().size(), 27u);
  EXPECT_EQ(model.ops().size(), 6u);
}

TEST(WrnModel, ApplyMatchesAlgorithm1) {
  const WrnModel model{3, {1, 2}};
  WrnModel::State state(3, kBottom);
  const auto r1 = model.apply(state, {0, 1});
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, kBottom);  // slot 1 empty
  const auto r2 = model.apply(state, {2, 2});
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, 1);  // slot 0 holds 1
  EXPECT_EQ(state, (WrnModel::State{1, kBottom, 2}));
}

TEST(GacModel, HangsWithoutMutationBeyondCapacity) {
  const GacModel model{1, 1, {1, 2}};  // capacity 3
  GacModel::State state;
  for (int t = 0; t < 3; ++t) {
    EXPECT_TRUE(model.apply(state, {1}).has_value());
  }
  const std::string before = model.key(state);
  EXPECT_FALSE(model.apply(state, {2}).has_value());
  EXPECT_EQ(model.key(state), before);  // hang must not mutate
}

TEST(GacModel, KeyIsABisimulation) {
  // Property: equal canonical keys ⇒ identical responses on every future
  // op sequence. Randomized check over state pairs and futures.
  for (const auto [n, i] : {std::pair{1, 2}, {2, 1}, {2, 2}, {3, 1}}) {
    const GacModel model{n, i, {1, 2}};
    const auto states = model.states();
    // Group states by key.
    std::map<std::string, std::vector<std::size_t>> by_key;
    for (std::size_t s = 0; s < states.size(); ++s) {
      by_key[model.key(states[s])].push_back(s);
    }
    std::mt19937_64 rng(7);
    const auto ops = model.ops();
    for (const auto& [key, members] : by_key) {
      if (members.size() < 2) {
        continue;
      }
      // Compare the first two members on 20 random futures of length 6.
      for (int trial = 0; trial < 20; ++trial) {
        auto a = states[members[0]];
        auto b = states[members[1]];
        for (int step = 0; step < 6; ++step) {
          const auto& op = ops[rng() % ops.size()];
          const auto ra = model.apply(a, op);
          const auto rb = model.apply(b, op);
          ASSERT_EQ(ra.has_value(), rb.has_value())
              << "hang divergence from key " << key;
          if (ra.has_value()) {
            ASSERT_EQ(*ra, *rb) << "response divergence from key " << key;
          }
          ASSERT_EQ(model.key(a), model.key(b))
              << "key divergence after step from " << key;
        }
      }
    }
  }
}

TEST(GacModel, StateCountsGrowWithLevel) {
  const GacModel small{2, 1, {1, 2}};
  const GacModel large{2, 3, {1, 2}};
  EXPECT_LT(small.states().size(), large.states().size());
}

TEST(ValenceModels, DescribeIsHumanReadable) {
  EXPECT_EQ(WrnModel::describe({1, 5}), "WRN(1,5)");
  EXPECT_EQ(GacModel::describe({7}), "propose(7)");
}

}  // namespace
}  // namespace subc
