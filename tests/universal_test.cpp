// Tests for Herlihy's universal construction: linearizable wait-free
// objects for n processes from n-consensus objects and registers.
#include "subc/algorithms/universal.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "subc/checking/linearizability.hpp"
#include "subc/checking/progress.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

/// Sequential counter spec: op {0, d} = add d (returns previous value);
/// op {1} = read.
struct CounterSpec {
  struct State {
    Value total = 0;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    if (op[0] == 0) {
      response = {s.total};
      s.total += op[1];
    } else {
      response = {s.total};
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& s) const {
    return std::to_string(s.total);
  }
};

/// Sequential queue spec: op {0, v} = enqueue (returns {}); op {1} =
/// dequeue (returns {front or ⊥}).
struct QueueSpec {
  struct State {
    std::vector<Value> items;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    if (op[0] == 0) {
      s.items.push_back(op[1]);
      response = {};
    } else {
      if (s.items.empty()) {
        response = {kBottom};
      } else {
        response = {s.items.front()};
        s.items.erase(s.items.begin());
      }
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& s) const {
    std::string k;
    for (const Value v : s.items) {
      k += std::to_string(v) + ",";
    }
    return k;
  }
};

TEST(Universal, SequentialCounterBehaviour) {
  Runtime rt;
  UniversalObject<CounterSpec> counter(CounterSpec{}, 1, 16);
  rt.add_process([&](Context& ctx) {
    EXPECT_EQ(counter.apply(ctx, {0, 5}), (std::vector<Value>{0}));
    EXPECT_EQ(counter.apply(ctx, {0, 3}), (std::vector<Value>{5}));
    EXPECT_EQ(counter.apply(ctx, {1}), (std::vector<Value>{8}));
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(Universal, FetchAddIsLinearizableUnderAllSchedules) {
  // 2 processes x 1 fetch-add each, exhaustive: responses must form a
  // permutation {0, d} — the atomic counter semantics.
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        UniversalObject<CounterSpec> counter(CounterSpec{}, 2, 12);
        std::vector<Value> previous(2, -1);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            previous[static_cast<std::size_t>(p)] =
                counter.apply(ctx, {0, 10 + p})[0];
          });
        }
        rt.run(driver);
        // One of them saw 0; the other saw the first one's delta.
        const bool ok01 = previous[0] == 0 && previous[1] == 10;
        const bool ok10 = previous[1] == 0 && previous[0] == 11;
        if (!ok01 && !ok10) {
          throw SpecViolation("counter not linearizable: saw " +
                              to_string(previous[0]) + "," +
                              to_string(previous[1]));
        }
      },
      Explorer::Options{.max_executions = 300'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(Universal, QueueHistoriesAreLinearizable) {
  // 3 processes, mixed enqueue/dequeue, random schedules; check the full
  // history with the Wing–Gong checker against the same spec.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        UniversalObject<QueueSpec> queue(QueueSpec{}, 3, 24);
        History history;
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            {
              const auto h = history.invoke(p, {0, 100 + p});
              const auto r = queue.apply(ctx, {0, 100 + p});
              history.respond(h, r);
            }
            {
              const auto h = history.invoke(p, {1});
              const auto r = queue.apply(ctx, {1});
              history.respond(h, r);
            }
          });
        }
        rt.run(driver);
        require_linearizable(QueueSpec{}, history);
      },
      400);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Universal, LogHasNoDuplicatesAndRespectsAnnouncements) {
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        UniversalObject<CounterSpec> counter(CounterSpec{}, 4, 40);
        for (int p = 0; p < 4; ++p) {
          rt.add_process([&, p](Context& ctx) {
            counter.apply(ctx, {0, 1 + p});
            counter.apply(ctx, {0, 10 + p});
          });
        }
        rt.run(driver);
        const auto log = counter.log();
        if (log.size() < 8) {
          throw SpecViolation("log lost operations");
        }
        // Duplicate-freedom across (pid, op) pairs.
        for (std::size_t a = 0; a < log.size(); ++a) {
          for (std::size_t b = a + 1; b < log.size(); ++b) {
            if (log[a] == log[b]) {
              throw SpecViolation("duplicate log entry");
            }
          }
        }
      },
      400);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Universal, WaitFreeUnderAllParticipationSets) {
  const int n = 3;
  const auto report = check_wait_freedom(
      [n](const std::vector<int>&) {
        auto rt = std::make_unique<Runtime>();
        auto counter = std::make_shared<UniversalObject<CounterSpec>>(
            CounterSpec{}, n, 30);
        for (int p = 0; p < n; ++p) {
          rt->add_process([counter, p](Context& ctx) {
            counter->apply(ctx, {0, 1 + p});
            counter->apply(ctx, {1});
          });
        }
        return rt;
      },
      n, /*rounds=*/10);
  EXPECT_TRUE(report.ok()) << *report.violation;
}

TEST(Universal, ImplementsWrnFromConsensusObjects) {
  // The universality claim, instantiated on the paper's own object: a
  // 1sWRN_3 for 3 processes built from 3-consensus objects, checked against
  // the same sequential spec Algorithm 5 is checked against.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        UniversalObject<OneShotWrnSpec> wrn(OneShotWrnSpec{3}, 3, 24);
        History history;
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            const auto h = history.invoke(
                p, {static_cast<Value>(p), static_cast<Value>(100 + p)});
            const auto r = wrn.apply(
                ctx, {static_cast<Value>(p), static_cast<Value>(100 + p)});
            history.respond(h, r);
          });
        }
        rt.run(driver);
        require_linearizable(OneShotWrnSpec{3}, history);
      },
      400);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Universal, CapacityExhaustionThrows) {
  Runtime rt;
  UniversalObject<CounterSpec> counter(CounterSpec{}, 1, 2);
  rt.add_process([&](Context& ctx) {
    counter.apply(ctx, {0, 1});
    counter.apply(ctx, {0, 1});
    EXPECT_THROW(counter.apply(ctx, {0, 1}), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(Universal, ParameterValidation) {
  EXPECT_THROW(UniversalObject<CounterSpec>(CounterSpec{}, 0, 4), SimError);
  EXPECT_THROW(UniversalObject<CounterSpec>(CounterSpec{}, 2, 0), SimError);
}

}  // namespace
}  // namespace subc
