#!/usr/bin/env bash
# Full verification pass: configure, build, run the test suite, run the
# UndefinedBehaviorSanitizer and ThreadSanitizer configurations, then run
# every experiment binary from a Release build. Exits non-zero on the first
# failure. This is what CI would run. Every ctest invocation carries a
# per-test timeout so a hung exploration fails loudly instead of stalling
# the whole pass.
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-test wall-clock budget (seconds). Generous: the slowest tier-1 test
# finishes in well under a minute on a laptop.
CTEST_TIMEOUT=300

# --- Default (Debug-ish) build + full test suite -------------------------
cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure --timeout "${CTEST_TIMEOUT}"

# --- UndefinedBehaviorSanitizer: the whole suite. The footprint/sleep-set -
# layer leans on bit shifts over 64-bit masks and on mixed-radix counter
# arithmetic; UBSan guards the shift widths and signed overflow.
cmake -B build-ubsan -G Ninja \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
cmake --build build-ubsan

ctest --test-dir build-ubsan --output-on-failure --timeout "${CTEST_TIMEOUT}"

# --- ThreadSanitizer: guard the parallel explorer's work queue and -------
# cancellation paths (and the fiber layer's TSan integration).
cmake -B build-tsan -G Ninja \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan --target fiber_test explorer_test \
  parallel_explorer_test reduction_test
for t in fiber_test explorer_test parallel_explorer_test reduction_test; do
  echo "== tsan: ${t}"
  "build-tsan/tests/${t}"
done

# --- Benches: Release build, JSON artifacts land in bench-results/ -------
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-release

mkdir -p bench-results
cd bench-results
for bench in ../build-release/bench/bench_*; do
  echo "== ${bench}"
  "${bench}"
done
cd ..
echo "ALL CHECKS PASSED"
