#!/usr/bin/env bash
# Full verification pass: configure, build, run the test suite, run the
# AddressSanitizer, UndefinedBehaviorSanitizer and ThreadSanitizer
# configurations, then run every experiment binary from a Release build.
# Exits non-zero on the first failure. This is what CI would run. Every
# ctest invocation carries a per-test timeout so a hung exploration fails
# loudly instead of stalling the whole pass.
#
#   scripts/check.sh              full pass (tier-1 + sanitizers + benches)
#   scripts/check.sh --quick      tier-1 only: build + test suite, nothing else
#   scripts/check.sh --perf-smoke throughput gate only: Release bench_f4
#                                 (JSON measurement, microbenches skipped),
#                                 best of 3 runs, fail on >30% regression of
#                                 either engine's serial explorer rate
#                                 (serial_executions_per_sec for fibers,
#                                 stepped_serial_executions_per_sec for the
#                                 stepped engine) against the checked-in
#                                 scripts/perf_baseline/BENCH_F4.json
#   scripts/check.sh --stepper-smoke engine-equivalence gate only: the
#                                 equivalence pin and stepped-engine suites
#                                 under Debug + AddressSanitizer — proves
#                                 fiber and stepped kernels explore
#                                 bit-identically before anything ships
#   scripts/check.sh --crash-smoke crash-exploration gate only: exhaustive
#                                 f=1 over Algorithm 5's doorway scenario
#                                 must verify linearizable, and the
#                                 doorway-ablated variant must report a
#                                 violation — both deterministic
#   scripts/check.sh --recovery-smoke crash-recovery gate only: the
#                                 recovery-exploration suite (restartable
#                                 processes, durable vs volatile objects,
#                                 the recoverable-consensus machine-check)
#                                 plus the recovery-axis equivalence pins,
#                                 under Debug + AddressSanitizer — restart
#                                 re-carves fiber stacks and stepped state
#                                 blocks, exactly what ASan must watch
#   scripts/check.sh --stateful-smoke stateful-exploration gate only: the
#                                 hashing/visited-set suite, the stateful
#                                 explorer suite, and the stateful half of
#                                 the equivalence pins, all under Debug +
#                                 AddressSanitizer — proves stateful cuts
#                                 stay sound and both engines fingerprint
#                                 identically before anything ships
#   scripts/check.sh --soak-smoke multi-instance service gate only: ~5 s of
#                                 bench_f8_soak's agreement-as-a-service
#                                 stage under AddressSanitizer with the
#                                 audit sampler at 100% — the bench
#                                 self-gates on zero violations, >=1000
#                                 concurrent live instances per shard, and
#                                 fully drained shard tables at exit
#   scripts/check.sh --service-smoke sharded-service gate only: the
#                                 ShardedService suite (routing, shard
#                                 isolation, dedup-memo races, backpressure,
#                                 drain-at-exit) under ThreadSanitizer —
#                                 the cross-thread inbox / memo / stop
#                                 protocol is exactly what TSan watches
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
PERF_SMOKE=0
STEPPER_SMOKE=0
CRASH_SMOKE=0
RECOVERY_SMOKE=0
STATEFUL_SMOKE=0
SOAK_SMOKE=0
SERVICE_SMOKE=0
for arg in "$@"; do
  case "${arg}" in
    --quick) QUICK=1 ;;
    --perf-smoke) PERF_SMOKE=1 ;;
    --stepper-smoke) STEPPER_SMOKE=1 ;;
    --crash-smoke) CRASH_SMOKE=1 ;;
    --recovery-smoke) RECOVERY_SMOKE=1 ;;
    --stateful-smoke) STATEFUL_SMOKE=1 ;;
    --soak-smoke) SOAK_SMOKE=1 ;;
    --service-smoke) SERVICE_SMOKE=1 ;;
    *)
      echo "usage: scripts/check.sh [--quick|--perf-smoke|--stepper-smoke|--crash-smoke|--recovery-smoke|--stateful-smoke|--soak-smoke|--service-smoke]" >&2
      exit 2
      ;;
  esac
done

# --- Perf smoke: a fast standalone throughput gate -----------------------
# Catches "the refactor quietly halved the explorer" before the expensive
# sanitizer stages run. 30% headroom absorbs machine noise; real regressions
# from allocation creep on the hot path are integer factors, not percents.
if [[ "${PERF_SMOKE}" == "1" ]]; then
  BASELINE="scripts/perf_baseline/BENCH_F4.json"
  if [[ ! -f "${BASELINE}" ]]; then
    echo "perf-smoke: missing baseline ${BASELINE}" >&2
    exit 2
  fi
  cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release --target bench_f4_micro
  mkdir -p bench-results
  extract_field() {
    # Pull a numeric field out of a flat JSON line (values may be printed
    # in scientific notation). $1 = field name, $2 = file.
    sed -n 's/.*"'"$1"'": \([-0-9.eE+]*\).*/\1/p' "$2"
  }
  # Both execution engines gate independently: the fiber rate and the
  # stepped rate are different codepaths through the kernel, and either
  # can regress without moving the other.
  BEST_FIBER=0
  BEST_STEPPED=0
  for i in 1 2 3; do
    # stdout/stderr silenced (google-benchmark notes it matched nothing);
    # a non-zero exit still aborts via set -e.
    (cd bench-results && ../build-release/bench/bench_f4_micro \
        --benchmark_filter='^$' >/dev/null 2>&1)
    FIBER_RATE="$(extract_field serial_executions_per_sec \
        bench-results/BENCH_F4.json)"
    STEPPED_RATE="$(extract_field stepped_serial_executions_per_sec \
        bench-results/BENCH_F4.json)"
    echo "perf-smoke: run ${i}: fiber ${FIBER_RATE} exec/s, stepped ${STEPPED_RATE} exec/s"
    BEST_FIBER="$(awk -v a="${BEST_FIBER}" -v b="${FIBER_RATE}" \
        'BEGIN { print (a + 0 > b + 0) ? a + 0 : b + 0 }')"
    BEST_STEPPED="$(awk -v a="${BEST_STEPPED}" -v b="${STEPPED_RATE}" \
        'BEGIN { print (a + 0 > b + 0) ? a + 0 : b + 0 }')"
  done
  FAIL=0
  for engine in fiber stepped; do
    if [[ "${engine}" == "fiber" ]]; then
      FIELD=serial_executions_per_sec BEST="${BEST_FIBER}"
    else
      FIELD=stepped_serial_executions_per_sec BEST="${BEST_STEPPED}"
    fi
    BASE_RATE="$(extract_field "${FIELD}" "${BASELINE}")"
    echo "perf-smoke: ${engine}: best ${BEST} exec/s vs baseline ${BASE_RATE} exec/s"
    if ! awk -v c="${BEST}" -v b="${BASE_RATE}" \
        'BEGIN { exit (c + 0 >= 0.7 * (b + 0)) ? 0 : 1 }'; then
      echo "perf-smoke: FAIL — ${engine} serial explorer throughput regressed >30%" >&2
      FAIL=1
    fi
  done
  [[ "${FAIL}" == "0" ]] || exit 1

  # Stateful-exploration headline (BENCH_F5): the bench self-gates its
  # >=5x execution-count win on the convergent mixed cell and exits
  # non-zero on failure; on top of that, the deterministic
  # best-mixed-cell factor must not drop below the checked-in baseline's.
  # Execution counts (not wall clock) make this gate noise-free.
  F5_BASELINE="scripts/perf_baseline/BENCH_F5.json"
  if [[ ! -f "${F5_BASELINE}" ]]; then
    echo "perf-smoke: missing baseline ${F5_BASELINE}" >&2
    exit 2
  fi
  cmake --build build-release --target bench_f5_statespace
  (cd bench-results && ../build-release/bench/bench_f5_statespace >/dev/null)
  F5_FACTOR="$(extract_field best_mixed_factor bench-results/BENCH_F5.json)"
  F5_BASE="$(extract_field best_mixed_factor "${F5_BASELINE}")"
  echo "perf-smoke: stateful best mixed-cell factor ${F5_FACTOR}x vs baseline ${F5_BASE}x"
  if ! awk -v c="${F5_FACTOR}" -v b="${F5_BASE}" \
      'BEGIN { exit (c + 0 >= b + 0) ? 0 : 1 }'; then
    echo "perf-smoke: FAIL — stateful exploration factor regressed below baseline" >&2
    exit 1
  fi

  # Sharded-service headline (BENCH_F8): aggregate service ops/s at 1 shard
  # and at 4 shards, best of 2 short runs, each >= 70% of the checked-in
  # baseline. Absolute per-configuration throughput is the portable signal —
  # wall-clock scaling across shards is gated inside the bench itself, and
  # only on hosts with >= 8 usable cores (the bench stamps the measured
  # ratio everywhere). Short runs land in a scratch dir so the checked-in
  # bench-results/BENCH_F8.json stays a full-length artifact.
  F8_BASELINE="scripts/perf_baseline/BENCH_F8.json"
  if [[ ! -f "${F8_BASELINE}" ]]; then
    echo "perf-smoke: missing baseline ${F8_BASELINE}" >&2
    exit 2
  fi
  cmake --build build-release --target bench_f8_soak
  ROOT="$(pwd)"
  F8_SCRATCH="$(mktemp -d)"
  trap 'rm -rf "${F8_SCRATCH}"' EXIT
  BEST_1SHARD=0
  BEST_4SHARD=0
  for i in 1 2; do
    (cd "${F8_SCRATCH}" && "${ROOT}/build-release/bench/bench_f8_soak" \
        0 2 10 >/dev/null)
    RATE_1="$(extract_field soak_ops_per_sec_1shard "${F8_SCRATCH}/BENCH_F8.json")"
    RATE_4="$(extract_field soak_ops_per_sec_4shard "${F8_SCRATCH}/BENCH_F8.json")"
    echo "perf-smoke: run ${i}: service 1-shard ${RATE_1} ops/s, 4-shard ${RATE_4} ops/s"
    BEST_1SHARD="$(awk -v a="${BEST_1SHARD}" -v b="${RATE_1}" \
        'BEGIN { print (a + 0 > b + 0) ? a + 0 : b + 0 }')"
    BEST_4SHARD="$(awk -v a="${BEST_4SHARD}" -v b="${RATE_4}" \
        'BEGIN { print (a + 0 > b + 0) ? a + 0 : b + 0 }')"
  done
  for cell in 1shard 4shard; do
    if [[ "${cell}" == "1shard" ]]; then
      FIELD=soak_ops_per_sec_1shard BEST="${BEST_1SHARD}"
    else
      FIELD=soak_ops_per_sec_4shard BEST="${BEST_4SHARD}"
    fi
    BASE_RATE="$(extract_field "${FIELD}" "${F8_BASELINE}")"
    echo "perf-smoke: service ${cell}: best ${BEST} ops/s vs baseline ${BASE_RATE} ops/s"
    if ! awk -v c="${BEST}" -v b="${BASE_RATE}" \
        'BEGIN { exit (c + 0 >= 0.7 * (b + 0)) ? 0 : 1 }'; then
      echo "perf-smoke: FAIL — sharded service ${cell} throughput regressed >30%" >&2
      FAIL=1
    fi
  done
  [[ "${FAIL}" == "0" ]] || exit 1
  echo "PERF SMOKE PASSED"
  exit 0
fi

# --- Stepper smoke: the engine-equivalence gate --------------------------
# The stepped engine is only admissible because it is *provably* the same
# search: the pin suite replays both engines across the {reduction,
# threads, crash} grid and requires bit-identical Results, and the stepper
# suite covers mixed-engine worlds, the fiber-fallback rule, replay/shrink
# and state-block teardown. Run under ASan so the duff's-device state
# blocks and the arena carving get lifetime-checked at the same time.
if [[ "${STEPPER_SMOKE}" == "1" ]]; then
  cmake -B build-asan -G Ninja \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
  cmake --build build-asan --target equivalence_pin_test stepper_test
  build-asan/tests/equivalence_pin_test
  build-asan/tests/stepper_test
  echo "STEPPER SMOKE PASSED"
  exit 0
fi

# --- Crash smoke: the exhaustive crash-exploration gate ------------------
# Two deterministic facts stand in for the whole robustness story: with
# f = 1 every single-crash placement over Algorithm 5's doorway scenario
# yields a linearizable history, and ablating the doorway makes the same
# exhaustive search convict the algorithm with a concrete counterexample.
# Both run under the step-quota watchdog, so a livelocked regression fails
# structurally instead of hanging the stage.
if [[ "${CRASH_SMOKE}" == "1" ]]; then
  cmake -B build -G Ninja
  cmake --build build --target crash_exploration_test
  build/tests/crash_exploration_test --gtest_filter='CrashExploration.Algorithm5LinearizableOverAllSingleCrashPlacements:CrashExploration.DoorwayAblationConvictedDeterministically'
  echo "CRASH SMOKE PASSED"
  exit 0
fi

# --- Recovery smoke: the crash-recovery gate ------------------------------
# Restart re-enters a crashed process from the top — destroying and
# re-carving its fiber stack or restoring its stepped state block from the
# pristine snapshot — while durable object state persists and volatile
# state is wiped by crash-event hooks. All of that is lifetime-sensitive,
# so the gate runs the recovery suite (restartable processes, the
# durability axis, replay/shrink/jsonl of recovery decisions, the
# recoverable-consensus machine-check) and the checkpoint suite's recovery
# campaign under ASan, plus the full equivalence pins whose f=1 r=1 axis
# requires both engines to restart bit-identically.
if [[ "${RECOVERY_SMOKE}" == "1" ]]; then
  cmake -B build-asan -G Ninja \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
  cmake --build build-asan --target recovery_exploration_test \
    checkpoint_resume_test equivalence_pin_test
  build-asan/tests/recovery_exploration_test
  build-asan/tests/checkpoint_resume_test \
    --gtest_filter='CheckpointResume.RecoveryExplorationCampaignResumes:CheckpointResume.DecisionStringsRoundTripIncludingCrashFlags'
  build-asan/tests/equivalence_pin_test --gtest_filter='-*Stateful*'
  echo "RECOVERY SMOKE PASSED"
  exit 0
fi

# --- Stateful smoke: the stateful-exploration soundness gate -------------
# Stateful cuts are only admissible because they are provably the same
# verdict: the hashing suite pins the fingerprint primitives and attacks
# the visited set's open addressing, the stateful suite covers soundness
# (violations found, replayed, shrunk; unported worlds degrade to zero
# cuts) and the knob/checkpoint rules, and the stateful equivalence pins
# require both engines to fingerprint bit-identically. Run under ASan so
# the concurrent visited set gets lifetime-checked at the same time.
if [[ "${STATEFUL_SMOKE}" == "1" ]]; then
  cmake -B build-asan -G Ninja \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
  cmake --build build-asan --target hashing_test stateful_exploration_test \
    equivalence_pin_test
  build-asan/tests/hashing_test
  build-asan/tests/stateful_exploration_test
  build-asan/tests/equivalence_pin_test --gtest_filter='*Stateful*'
  echo "STATEFUL SMOKE PASSED"
  exit 0
fi

# --- Soak smoke: the multi-instance service gate -------------------------
# ~5 s of agreement-as-a-service traffic (thousands of concurrent 1sWRN /
# GAC / set-consensus instances over one InstanceTable) under ASan, with
# every decided instance audited (audit-percent 100). The bench self-gates:
# zero audit violations, the >=1000 concurrent-live-instance high-water
# mark, and zero live instances left in the table at exit (block recycling,
# not monotone arena growth). The legacy randomized-schedule stage is
# skipped (0 s) — this gate is about the instance layer, and the full pass
# still soaks the legacy workloads from the Release bench stage. Results
# land in a scratch directory so checked-in bench-results/ stay untouched.
if [[ "${SOAK_SMOKE}" == "1" ]]; then
  cmake -B build-asan -G Ninja \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
  cmake --build build-asan --target bench_f8_soak
  ROOT="$(pwd)"
  SCRATCH="$(mktemp -d)"
  trap 'rm -rf "${SCRATCH}"' EXIT
  (cd "${SCRATCH}" && "${ROOT}/build-asan/bench/bench_f8_soak" 0 5 100)
  echo "SOAK SMOKE PASSED"
  exit 0
fi

# --- Service smoke: the sharded-service concurrency gate ------------------
# The ShardedService suite under ThreadSanitizer: per-shard MPSC inboxes
# over the Vyukov ring, the park/notify producer-consumer protocol, the
# CAS-claimed DecisionMemo (exactly-one-winner, publish-before-lookup), and
# the stop()/drain/join teardown are all cross-thread edges — exactly what
# TSan instruments. The same suite runs un-sanitized in tier-1; this stage
# is the data-race gate.
if [[ "${SERVICE_SMOKE}" == "1" ]]; then
  cmake -B build-tsan -G Ninja \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan --target sharded_service_test
  build-tsan/tests/sharded_service_test
  echo "SERVICE SMOKE PASSED"
  exit 0
fi

# Per-test wall-clock budget (seconds). Generous: the slowest tier-1 test
# finishes in well under a minute on a laptop. (Each discovered test also
# carries its own 120 s ctest TIMEOUT from tests/CMakeLists.txt.)
CTEST_TIMEOUT=300

# --- Default (Debug-ish) build + full test suite -------------------------
cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure --timeout "${CTEST_TIMEOUT}"

if [[ "${QUICK}" == "1" ]]; then
  echo "QUICK CHECKS PASSED (tier-1 only; sanitizers and benches skipped)"
  exit 0
fi

# --- AddressSanitizer: the whole suite. The fiber layer hand-switches ----
# stacks with swapcontext, which ASan can only follow through the
# __sanitizer_*_switch_fiber annotations in src/runtime/fiber.cpp — this
# stage is what keeps those annotations honest, and catches stack misuse /
# lifetime bugs everywhere else.
cmake -B build-asan -G Ninja \
  -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
cmake --build build-asan

ctest --test-dir build-asan --output-on-failure --timeout "${CTEST_TIMEOUT}"

# --- UndefinedBehaviorSanitizer: the whole suite. The footprint/sleep-set -
# layer leans on bit shifts over 64-bit masks and on mixed-radix counter
# arithmetic; UBSan guards the shift widths and signed overflow.
cmake -B build-ubsan -G Ninja \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
cmake --build build-ubsan

ctest --test-dir build-ubsan --output-on-failure --timeout "${CTEST_TIMEOUT}"

# --- ThreadSanitizer: guard the parallel explorer's work queue and -------
# cancellation paths (and the fiber layer's TSan integration).
cmake -B build-tsan -G Ninja \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan --target fiber_test explorer_test \
  parallel_explorer_test reduction_test sharded_service_test
for t in fiber_test explorer_test parallel_explorer_test reduction_test \
    sharded_service_test; do
  echo "== tsan: ${t}"
  "build-tsan/tests/${t}"
done

# --- Benches: Release build, JSON artifacts land in bench-results/ -------
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-release

mkdir -p bench-results
cd bench-results
for bench in ../build-release/bench/bench_*; do
  echo "== ${bench}"
  "${bench}"
done
cd ..
echo "ALL CHECKS PASSED"
