#!/usr/bin/env bash
# Full verification pass: configure, build, run the test suite, run the
# ThreadSanitizer configuration of the concurrency-sensitive tests, then run
# every experiment binary from a Release build. Exits non-zero on the first
# failure. This is what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

# --- Default (Debug-ish) build + full test suite -------------------------
cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

# --- ThreadSanitizer: guard the parallel explorer's work queue and -------
# cancellation paths (and the fiber layer's TSan integration).
cmake -B build-tsan -G Ninja \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan --target fiber_test explorer_test \
  parallel_explorer_test
for t in fiber_test explorer_test parallel_explorer_test; do
  echo "== tsan: ${t}"
  "build-tsan/tests/${t}"
done

# --- Benches: Release build, JSON artifacts land in bench-results/ -------
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-release

mkdir -p bench-results
cd bench-results
for bench in ../build-release/bench/bench_*; do
  echo "== ${bench}"
  "${bench}"
done
cd ..
echo "ALL CHECKS PASSED"
