#!/usr/bin/env bash
# Full verification pass: configure, build, run the test suite, run every
# experiment binary. Exits non-zero on the first failure. This is what CI
# would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

for bench in build/bench/bench_*; do
  echo "== ${bench}"
  "${bench}"
done
echo "ALL CHECKS PASSED"
