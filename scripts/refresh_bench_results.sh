#!/usr/bin/env bash
# Regenerates the committed bench-results/ artifacts from a Release build,
# or (--check) verifies the checked-in artifacts are structurally current.
#
#   scripts/refresh_bench_results.sh          run every bench binary, write
#                                             bench-results/BENCH_*.json
#   scripts/refresh_bench_results.sh --check  regenerate into a temp dir and
#                                             diff *structure* against
#                                             bench-results/: a missing
#                                             artifact, an artifact with no
#                                             surviving bench, or a changed
#                                             JSON key set fails loudly
#
# Values (timings, rates) legitimately vary run to run, so --check compares
# the sorted key sets of each artifact, not the values: that is exactly the
# staleness that bites — a bench grew or renamed fields and the committed
# artifact silently kept the old schema.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
for arg in "$@"; do
  case "${arg}" in
    --check) CHECK=1 ;;
    *)
      echo "usage: scripts/refresh_bench_results.sh [--check]" >&2
      exit 2
      ;;
  esac
done

cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release --target \
  $(ls bench/bench_*.cpp | xargs -n1 basename | sed 's/\.cpp$//')

# Flatten a JSON artifact to its sorted set of key names (nested keys
# included, array indices ignored so per-row cells compare by shape).
key_set() {
  python3 - "$1" <<'EOF'
import json, sys
def keys(prefix, v, out):
    if isinstance(v, dict):
        for k, vv in v.items():
            out.add(f"{prefix}{k}")
            keys(f"{prefix}{k}.", vv, out)
    elif isinstance(v, list):
        for vv in v:
            keys(f"{prefix}[]", vv, out)
with open(sys.argv[1]) as f:
    data = json.load(f)
out = set()
keys("", data, out)
print("\n".join(sorted(out)))
EOF
}

if [[ "${CHECK}" == "1" ]]; then
  TMP="$(mktemp -d)"
  trap 'rm -rf "${TMP}"' EXIT
  (cd "${TMP}" && for bench in "${OLDPWD}"/build-release/bench/bench_*; do
    [[ -x "${bench}" ]] || continue
    echo "== $(basename "${bench}")"
    "${bench}" >/dev/null
  done)
  FAIL=0
  for fresh in "${TMP}"/BENCH_*.json; do
    name="$(basename "${fresh}")"
    committed="bench-results/${name}"
    if [[ ! -f "${committed}" ]]; then
      echo "refresh-bench: STALE — ${committed} missing (bench now emits it)" >&2
      FAIL=1
      continue
    fi
    if ! diff <(key_set "${committed}") <(key_set "${fresh}") >/dev/null; then
      echo "refresh-bench: STALE — ${committed} key set drifted:" >&2
      diff <(key_set "${committed}") <(key_set "${fresh}") | sed 's/^/  /' >&2 || true
      FAIL=1
    fi
  done
  for committed in bench-results/BENCH_*.json; do
    name="$(basename "${committed}")"
    if [[ ! -f "${TMP}/${name}" ]]; then
      echo "refresh-bench: STALE — ${committed} has no bench emitting it" >&2
      FAIL=1
    fi
  done
  # The F8 artifact must carry the agreement-as-a-service soak cells
  # (set_soak_fields in bench/bench_util.hpp). The generic key-set diff
  # would accept a bench that silently stopped stamping them on *both*
  # sides, so the required keys are pinned by name.
  # (grep without -q: early exit would SIGPIPE the key_set python under
  # pipefail even when the key is present.)
  for key in soak_ops_per_sec soak_p50_ticks soak_p99_ticks soak_peak_live \
             soak_instances_gcd soak_audited soak_violations soak_shards \
             soak_shard_ops soak_dedup_hits soak_scaling_x; do
    if ! key_set bench-results/BENCH_F8.json 2>/dev/null \
        | grep -x "${key}" >/dev/null; then
      echo "refresh-bench: STALE — bench-results/BENCH_F8.json missing soak cell ${key}" >&2
      FAIL=1
    fi
  done
  # Every artifact must carry the crash-recovery cells (set_recovery_fields
  # in bench/bench_util.hpp) — same rationale as the soak pin above: the
  # key-set diff can't catch a field dropped from both sides at once.
  for committed in bench-results/BENCH_*.json; do
    for key in max_recoveries recovered_executions; do
      if ! key_set "${committed}" 2>/dev/null \
          | grep -x "${key}" >/dev/null; then
        echo "refresh-bench: STALE — ${committed} missing recovery cell ${key}" >&2
        FAIL=1
      fi
    done
  done
  [[ "${FAIL}" == "0" ]] || exit 1
  echo "BENCH RESULTS CURRENT"
  exit 0
fi

mkdir -p bench-results
cd bench-results
for bench in ../build-release/bench/bench_*; do
  [[ -x "${bench}" ]] || continue
  echo "== $(basename "${bench}")"
  "${bench}"
done
cd ..
echo "BENCH RESULTS REFRESHED"
