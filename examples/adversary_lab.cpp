// adversary_lab: drive Algorithm 5 (the linearizable 1sWRN_k built from
// strong set election) under hand-crafted and random adversarial schedules,
// and watch the linearization the Wing–Gong checker constructs.
//
//   $ ./adversary_lab              # scripted scenario + random sweep
//   $ ./adversary_lab <seed>       # one random schedule, verbose
//
// The scripted scenario reproduces the §5 discussion: an early invocation
// completes before a later one starts, constraining the linearization
// order; the double-snapshot (O[] views) is what keeps the implementation
// linearizable.
#include <cstdio>
#include <cstdlib>

#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/checking/trace_viz.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace {

using namespace subc;

void print_history_and_linearization(const History& history, int k) {
  TraceVizOptions viz;
  viz.op_name = "1sWRN";
  std::printf("space-time diagram (logical time):\n%s\n",
              render_history(history, viz).c_str());
  std::printf("history (invocation/response order):\n%s\n",
              history.dump().c_str());
  const auto result = check_linearizable(OneShotWrnSpec{k}, history.entries());
  if (!result.linearizable) {
    std::printf("NOT LINEARIZABLE: %s\n", result.message.c_str());
    return;
  }
  std::printf("a legal linearization:\n");
  const auto& entries = history.entries();
  for (std::size_t pos = 0; pos < result.order.size(); ++pos) {
    const HistoryEntry& e = entries[result.order[pos]];
    std::printf("  %zu. p%d 1sWRN(%lld, %lld)", pos + 1, e.pid,
                static_cast<long long>(e.op[0]),
                static_cast<long long>(e.op[1]));
    if (!e.pending()) {
      std::printf(" -> %s\n", to_string(e.response[0]).c_str());
    } else {
      std::printf(" [pending op linearized]\n");
    }
  }
}

void scripted_scenario() {
  std::printf("=== scripted scenario (the §5 ordering hazard) ===\n\n");
  // w2 (index 2) runs to completion first; then w1 (index 1) and w0
  // (index 0) interleave. Without the O[] views, w1 could return w2's value
  // while appearing to linearize after an operation that started later.
  Runtime rt;
  WrnFromSse object(3);
  History history;
  rt.add_process([&](Context& ctx) {  // pid 0: w2 then w0
    object.one_shot_wrn(ctx, 2, 302, &history);
    object.one_shot_wrn(ctx, 0, 300, &history);
  });
  rt.add_process([&](Context& ctx) {  // pid 1: w1
    object.one_shot_wrn(ctx, 1, 301, &history);
  });
  // Schedule: pid 0 until w2 completes (its ops take ~8 steps), then
  // alternate.
  std::vector<int> script(8, 0);
  for (int i = 0; i < 40; ++i) {
    script.push_back(i % 2);
  }
  ScriptedDriver driver(script);
  rt.run(driver);
  print_history_and_linearization(history, 3);
}

void random_scenario(std::uint64_t seed) {
  std::printf("\n=== random schedule, seed %llu ===\n\n",
              static_cast<unsigned long long>(seed));
  Runtime rt;
  WrnFromSse object(4);
  History history;
  for (int p = 0; p < 4; ++p) {
    rt.add_process([&, p](Context& ctx) {
      object.one_shot_wrn(ctx, p, 400 + p, &history);
    });
  }
  RandomDriver driver(seed);
  rt.run(driver);
  print_history_and_linearization(history, 4);
}

void sweep() {
  std::printf("\n=== random sweep: 500 schedules, k = 3..5 ===\n");
  for (int k = 3; k <= 5; ++k) {
    const auto result = RandomSweep::run(
        [k](ScheduleDriver& driver) {
          Runtime rt;
          WrnFromSse object(k);
          History history;
          for (int p = 0; p < k; ++p) {
            rt.add_process([&, p](Context& ctx) {
              object.one_shot_wrn(ctx, p, 100 + p, &history);
            });
          }
          rt.run(driver);
          require_linearizable(OneShotWrnSpec{k}, history);
        },
        500);
    std::printf("  k=%d: %lld schedules, %s\n", k,
                static_cast<long long>(result.runs),
                result.ok() ? "all linearizable ✓"
                            : result.violation->c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    random_scenario(std::strtoull(argv[1], nullptr, 10));
    return 0;
  }
  scripted_scenario();
  random_scenario(7);
  sweep();
  return 0;
}
