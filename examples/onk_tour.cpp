// onk_tour: the reconstructed PODC 2016 objects, hands-on.
//
//   $ ./onk_tour [n] [k]        (defaults n = 2, k = 2)
//
// Walks through O_{n,k}:
//  1. the component GAC(n,i) rules on a sequential run (blocks + wrap);
//  2. n-process consensus on component 0, and the (n+1)-process failure;
//  3. the separation at N_k = nk+n+k: O_{n,k+1} vs O_{n,k}, both executed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "subc/algorithms/classic_consensus.hpp"
#include "subc/algorithms/onk_algorithms.hpp"
#include "subc/core/consensus_number.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

void component_rules(int n, int i) {
  std::printf("1. GAC(%d,%d): m = %d proposals, at most %d distinct "
              "answers\n", n, i, GacObject::capacity_static(n, i), i + 1);
  Runtime rt;
  GacObject gac(n, i);
  rt.add_process([&](Context& ctx) {
    const int m = gac.capacity();
    for (int t = 1; t <= m; ++t) {
      const Value got = gac.propose(ctx, 100 + t);
      std::printf("   arrival %2d proposes %3d -> %3lld%s\n", t, 100 + t,
                  static_cast<long long>(got),
                  t > n * (i + 1) ? "   (wrap-around: block 0's value)" : "");
    }
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

void consensus_boundary(int n) {
  std::printf("\n2. component 0 = deterministic %d-consensus:\n", n);
  {
    Runtime rt;
    OnkObject onk(n, 2);
    std::vector<Value> inputs;
    for (int p = 0; p < n; ++p) {
      inputs.push_back(10 + p);
    }
    for (int p = 0; p < n; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(consensus_from_onk(ctx, onk,
                                      inputs[static_cast<std::size_t>(p)]));
      });
    }
    RandomDriver driver(3);
    const auto result = rt.run(driver);
    check_agreement(result.decisions);
    std::printf("   %d processes agreed on %s ✓\n", n,
                to_string(result.decisions[0]).c_str());
  }
  const auto violation = find_consensus_violation(
      [n](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        GacObject gac(n, 1);
        for (int p = 0; p < n + 1; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus_attempt_from_gac(
                ctx, gac, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_agreement(run.decisions);
      },
      [n] {
        std::vector<Value> inputs;
        for (int p = 0; p < n + 1; ++p) {
          inputs.push_back(20 + p);
        }
        return inputs;
      }());
  std::printf("   %d processes on the same object: %s\n", n + 1,
              violation ? "disagreement schedule found ✓ (consensus number "
                          "stays n)"
                        : "?! no violation found");
}

void separation(int n, int k) {
  const OnkSeparation sep = onk_separation(n, k);
  std::printf("\n3. the 2016 separation at N_k = %d processes:\n",
              sep.system_size);
  std::printf("   calculus:  O_{%d,%d} best agreement %d | O_{%d,%d} best "
              "agreement %d\n", n, k + 1, sep.agreement_with_k1, n, k,
              sep.agreement_with_k);
  for (const int components : {k + 1, k}) {
    int worst = 0;
    RandomSweep::run(
        [&](ScheduleDriver& driver) {
          Runtime rt;
          OnkSetConsensus algorithm(n, components, sep.system_size);
          for (int p = 0; p < sep.system_size; ++p) {
            rt.add_process([&, p](Context& ctx) {
              ctx.decide(algorithm.propose(ctx, p, 500 + p));
            });
          }
          const auto run = rt.run(driver);
          worst = std::max(worst, distinct_decisions(run.decisions));
        },
        400);
    std::printf("   simulator: O_{%d,%d} worst observed distinct decisions "
                "= %d\n", n, components, worst);
  }
  std::printf("   both objects have consensus number %d — the consensus\n"
              "   hierarchy cannot tell them apart; set consensus can.\n", n);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 2;
  const int k = argc > 2 ? std::atoi(argv[2]) : 2;
  if (n < 1 || k < 1) {
    std::printf("usage: onk_tour [n >= 1] [k >= 1]\n");
    return 2;
  }
  std::printf("O_{%d,%d} — a deterministic object of consensus number %d\n"
              "(PODC 2016 reconstruction, DESIGN.md §4)\n\n", n, k, n);
  component_rules(n, std::min(k, 2));
  consensus_boundary(n);
  separation(n, k);
  return 0;
}
