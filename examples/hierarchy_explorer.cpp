// hierarchy_explorer: an interactive tour of the two hierarchies.
//
//   $ ./hierarchy_explorer                 # the full tour
//   $ ./hierarchy_explorer wrn             # only the 1sWRN_k level-1 chain
//   $ ./hierarchy_explorer onk <n>         # only the O_{n,k} chain at level n
//   $ ./hierarchy_explorer query n k m j   # is (n,k)-SC implementable from
//                                          # (m,j)-SC? with the partition
//
// Everything printed is computed from the Theorem 41 calculus
// (subc/core/hierarchy.hpp); the benches T3/T4 validate the same numbers in
// the simulator.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "subc/core/hierarchy.hpp"
#include "subc/runtime/value.hpp"

namespace {

using namespace subc;

void show_wrn_chain() {
  std::printf("================================================\n");
  std::printf("Level 1: the 1sWRN_k chain (DISC 2018 sequel)\n");
  std::printf("================================================\n\n");
  std::printf("1sWRN_k ≡ (k, k−1)-set consensus (Theorem 2); consensus "
              "number:\n");
  for (int k = 2; k <= 8; ++k) {
    std::printf("  k=%d: consensus number %d%s\n", k,
                sc_consensus_number(k, k - 1),
                k == 2 ? "  (WRN_2 = SWAP)" : "");
  }
  std::printf("\n%s\n", format_wrn_matrix(3, 10).c_str());
  std::printf("strictly between registers and 2-consensus: infinitely many\n"
              "classes, one per k >= 3.\n\n");
}

void show_onk_chain(int n) {
  std::printf("================================================\n");
  std::printf("Level %d: the O_{%d,k} chain (PODC 2016)\n", n, n);
  std::printf("================================================\n\n");
  std::printf("components of O_{%d,k}: GAC(%d,i) ≡ (m_i, j_i)-set "
              "consensus\n", n, n);
  for (int i = 0; i <= 5; ++i) {
    std::printf("  i=%d: (m,j) = (%2d,%2d), consensus number %d\n", i,
                onk_component_capacity(n, i), onk_component_agreement(i),
                i == 0 ? n : sc_consensus_number(onk_component_capacity(n, i),
                                                 onk_component_agreement(i)));
  }
  std::printf("\nseparations (O_{n,k} cannot implement O_{n,k+1} at "
              "N_k = nk+n+k):\n");
  std::printf("  %3s %5s %26s %26s\n", "k", "N_k", "best agreement O_{n,k}",
              "best agreement O_{n,k+1}");
  for (int k = 1; k <= 6; ++k) {
    const OnkSeparation sep = onk_separation(n, k);
    std::printf("  %3d %5d %26d %26d   %s\n", k, sep.system_size,
                sep.agreement_with_k, sep.agreement_with_k1,
                sep.separated() ? "separated ✓" : "NOT SEPARATED ?!");
  }
  std::printf("\nall have consensus number %d — consensus number alone "
              "cannot rank them.\n\n", n);
}

void show_query(int n, int k, int m, int j) {
  std::printf("(n,k)-set consensus from (m,j)-set consensus + registers?\n");
  std::printf("  target: (%d,%d), source: (%d,%d)\n", n, k, m, j);
  const int bound = sc_partition_agreement(n, m, j);
  std::printf("  partition bound: best achievable agreement = %d\n", bound);
  std::printf("  => %s\n", sc_implementable(n, k, m, j)
                               ? "IMPLEMENTABLE"
                               : "NOT implementable (Theorem 41 lower bound)");
  if (sc_implementable(n, k, m, j) && k < n) {
    std::printf("  construction: %d full group(s) of %d + remainder %d\n",
                n / m, m, n % m);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "wrn") == 0) {
    show_wrn_chain();
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "onk") == 0) {
    show_onk_chain(argc >= 3 ? std::atoi(argv[2]) : 2);
    return 0;
  }
  if (argc >= 6 && std::strcmp(argv[1], "query") == 0) {
    show_query(std::atoi(argv[2]), std::atoi(argv[3]), std::atoi(argv[4]),
               std::atoi(argv[5]));
    return 0;
  }
  show_wrn_chain();
  show_onk_chain(2);
  show_onk_chain(3);
  std::printf("try also: hierarchy_explorer query 12 8 3 2\n");
  return 0;
}
