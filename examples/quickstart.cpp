// Quickstart: simulate the paper's headline algorithm.
//
// Builds a world of k = 4 processes sharing one 1sWRN_4 object, runs
// Algorithm 2 ((k−1)-set consensus) under a seeded random schedule, and
// prints every process's proposal and decision plus the task-level checks.
//
//   $ ./quickstart [seed]
//
// Things to try: change the seed and watch the decision pattern rotate;
// bump k; replace RandomDriver with RoundRobinDriver to see the tight
// (k−1)-distinct outcome.
#include <cstdio>
#include <cstdlib>

#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace subc;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  constexpr int k = 4;

  // 1. A world: processes plus shared objects.
  Runtime runtime;
  WrnSetConsensus set_consensus(k);  // Algorithm 2 over one 1sWRN_4

  const std::vector<Value> proposals{100, 200, 300, 400};
  for (int p = 0; p < k; ++p) {
    runtime.add_process([&, p](Context& ctx) {
      const Value decision = set_consensus.propose(
          ctx, p, proposals[static_cast<std::size_t>(p)]);
      ctx.decide(decision);
    });
  }

  // 2. An adversary: the schedule driver.
  RandomDriver driver(seed);
  const auto result = runtime.run(driver);

  // 3. Inspect and validate.
  std::printf("Algorithm 2 on 1sWRN_%d, seed %llu\n\n", k,
              static_cast<unsigned long long>(seed));
  for (int p = 0; p < k; ++p) {
    std::printf("  P%d proposed %lld  ->  decided %lld\n", p,
                static_cast<long long>(proposals[static_cast<std::size_t>(p)]),
                static_cast<long long>(
                    result.decisions[static_cast<std::size_t>(p)]));
  }
  std::printf("\ntotal shared-memory steps: %lld\n",
              static_cast<long long>(result.total_steps));

  check_all_done_and_decided(result);          // wait-freedom (Claim 3)
  check_set_consensus(result, proposals, k - 1);  // validity + agreement
  std::printf("distinct decisions: %d (bound: %d)\n",
              distinct_decisions(result.decisions), k - 1);
  std::printf("all task properties verified ✓\n");
  return 0;
}
