// universal_objects: Herlihy's universality theorem, live.
//
//   $ ./universal_objects [seed]
//
// Builds three different linearizable objects for 3 processes out of
// nothing but 3-consensus objects and registers — a counter, a FIFO queue,
// and the paper's own 1sWRN_3 — runs them under a random adversary, prints
// the agreed operation logs, and checks the 1sWRN history with the
// Wing–Gong checker.
#include <cstdio>
#include <cstdlib>

#include "subc/algorithms/universal.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/scheduler.hpp"

namespace {

using namespace subc;

struct CounterSpec {
  struct State {
    Value total = 0;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    response = {s.total};
    if (op[0] == 0) {
      s.total += op[1];
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& s) const {
    return std::to_string(s.total);
  }
};

void print_log(const char* name,
               const std::vector<std::pair<int, std::vector<Value>>>& log) {
  std::printf("%s — agreed operation log:\n", name);
  for (std::size_t t = 0; t < log.size(); ++t) {
    std::printf("  slot %zu: p%d op(", t, log[t].first);
    for (std::size_t a = 0; a < log[t].second.size(); ++a) {
      std::printf("%s%lld", a ? "," : "",
                  static_cast<long long>(log[t].second[a]));
    }
    std::printf(")\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // A shared counter from 3-consensus objects.
  {
    Runtime rt;
    UniversalObject<CounterSpec> counter(CounterSpec{}, 3, 24);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        const auto before = counter.apply(ctx, {0, 10 + p});
        std::printf("  p%d: fetch_add(%d) -> previous %lld\n", p, 10 + p,
                    static_cast<long long>(before[0]));
      });
    }
    RandomDriver driver(seed);
    std::printf("counter built from 3-consensus objects (seed %llu):\n",
                static_cast<unsigned long long>(seed));
    rt.run(driver);
    print_log("counter", counter.log());
  }

  // The paper's 1sWRN_3, universally constructed, linearizability-checked.
  {
    Runtime rt;
    UniversalObject<OneShotWrnSpec> wrn(OneShotWrnSpec{3}, 3, 24);
    History history;
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        const std::vector<Value> op{static_cast<Value>(p),
                                    static_cast<Value>(100 + p)};
        const auto handle = history.invoke(p, op);
        const auto response = wrn.apply(ctx, op);
        history.respond(handle, response);
        std::printf("  p%d: 1sWRN(%d, %d) -> %s\n", p, p, 100 + p,
                    to_string(response[0]).c_str());
      });
    }
    RandomDriver driver(seed + 1);
    std::printf("\n1sWRN_3 built from 3-consensus objects:\n");
    rt.run(driver);
    print_log("1sWRN_3", wrn.log());
    require_linearizable(OneShotWrnSpec{3}, history);
    std::printf("history verified linearizable against the 1sWRN_3 spec ✓\n");
  }

  std::printf(
      "\nHerlihy's theorem in action: consensus number n ⇒ universal for n\n"
      "processes. The whole point of the papers is that *sub*-consensus\n"
      "objects (WRN_k, k ≥ 3) still form an infinite strict hierarchy below\n"
      "this universality threshold.\n");
  return 0;
}
