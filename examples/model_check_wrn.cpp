// model_check_wrn: the impossibility side of Theorem 1, executable.
//
//   $ ./model_check_wrn [k]
//
// Three exhibits for WRN_k (default k = 3):
//   1. the valence case census (Lemma 38's case analysis, mechanized) —
//      prints per-case coverage statistics;
//   2. a concrete disagreement: the natural 2-consensus protocol on WRN_k,
//      with the exact violating schedule the explorer found;
//   3. the k = 2 contrast: the same protocol on WRN_2 (= SWAP) survives
//      exhaustive exploration.
#include <cstdio>
#include <cstdlib>

#include "subc/algorithms/classic_consensus.hpp"
#include "subc/core/consensus_number.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

ConsensusWorldBody attempt(int k) {
  return [k](ScheduleDriver& driver, const std::vector<Value>& inputs) {
    Runtime rt;
    WrnObject wrn(k);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(consensus2_attempt_from_wrn(
            ctx, wrn, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_validity(inputs, run.decisions);
    check_agreement(run.decisions);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  if (k < 3) {
    std::printf("k must be >= 3 (WRN_2 is SWAP and solves 2-consensus)\n");
    return 2;
  }

  std::printf("exhibit 1: Lemma 38's case analysis for WRN_%d, mechanized\n",
              k);
  const ValenceReport report = check_wrn_valence(k);
  std::printf("  states checked: %ld, pending-step pairs: %ld\n",
              report.states_checked, report.pairs_checked);
  std::printf("  uncovered pairs: %zu  -> %s\n\n", report.uncovered.size(),
              report.all_covered()
                  ? "every pair indistinguishable to someone: the "
                    "critical-state argument closes; no wait-free 2-process "
                    "consensus from WRN_k and registers"
                  : "UNEXPECTED: the analysis should cover everything");

  std::printf("exhibit 2: the natural 2-consensus protocol on WRN_%d "
              "disagrees\n", k);
  std::printf("  protocol: role b runs t = WRN(b, v_b); decides t if t != "
              "⊥, else v_b\n");
  const auto violation = find_consensus_violation(attempt(k), {0, 1});
  if (violation) {
    std::printf("  explorer verdict: %s\n\n", violation->c_str());
  } else {
    std::printf("  UNEXPECTED: no violation found\n\n");
  }

  std::printf("exhibit 3: the same protocol on WRN_2 (= SWAP)\n");
  const auto check =
      check_consensus_algorithm(attempt(2), {{0, 1}, {1, 0}, {4, 4}});
  std::printf("  %lld executions, exhaustive: %s -> %s\n",
              static_cast<long long>(check.executions),
              check.exhaustive ? "yes" : "no",
              check.ok() ? "correct 2-consensus (consensus number 2)"
                         : check.violation->c_str());

  const bool ok = report.all_covered() && violation.has_value() && check.ok();
  return ok ? 0 : 1;
}
