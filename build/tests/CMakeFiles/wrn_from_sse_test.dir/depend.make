# Empty dependencies file for wrn_from_sse_test.
# This may be replaced when dependencies are built.
