file(REMOVE_RECURSE
  "CMakeFiles/wrn_from_sse_test.dir/wrn_from_sse_test.cpp.o"
  "CMakeFiles/wrn_from_sse_test.dir/wrn_from_sse_test.cpp.o.d"
  "wrn_from_sse_test"
  "wrn_from_sse_test.pdb"
  "wrn_from_sse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrn_from_sse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
