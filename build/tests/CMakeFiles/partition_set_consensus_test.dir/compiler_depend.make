# Empty compiler generated dependencies file for partition_set_consensus_test.
# This may be replaced when dependencies are built.
