file(REMOVE_RECURSE
  "CMakeFiles/partition_set_consensus_test.dir/partition_set_consensus_test.cpp.o"
  "CMakeFiles/partition_set_consensus_test.dir/partition_set_consensus_test.cpp.o.d"
  "partition_set_consensus_test"
  "partition_set_consensus_test.pdb"
  "partition_set_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_set_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
