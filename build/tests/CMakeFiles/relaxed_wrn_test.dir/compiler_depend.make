# Empty compiler generated dependencies file for relaxed_wrn_test.
# This may be replaced when dependencies are built.
