file(REMOVE_RECURSE
  "CMakeFiles/relaxed_wrn_test.dir/relaxed_wrn_test.cpp.o"
  "CMakeFiles/relaxed_wrn_test.dir/relaxed_wrn_test.cpp.o.d"
  "relaxed_wrn_test"
  "relaxed_wrn_test.pdb"
  "relaxed_wrn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxed_wrn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
