# Empty dependencies file for set_election_test.
# This may be replaced when dependencies are built.
