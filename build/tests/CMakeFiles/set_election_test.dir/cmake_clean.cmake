file(REMOVE_RECURSE
  "CMakeFiles/set_election_test.dir/set_election_test.cpp.o"
  "CMakeFiles/set_election_test.dir/set_election_test.cpp.o.d"
  "set_election_test"
  "set_election_test.pdb"
  "set_election_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_election_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
