file(REMOVE_RECURSE
  "CMakeFiles/universal_test.dir/universal_test.cpp.o"
  "CMakeFiles/universal_test.dir/universal_test.cpp.o.d"
  "universal_test"
  "universal_test.pdb"
  "universal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
