file(REMOVE_RECURSE
  "CMakeFiles/mwmr_register_test.dir/mwmr_register_test.cpp.o"
  "CMakeFiles/mwmr_register_test.dir/mwmr_register_test.cpp.o.d"
  "mwmr_register_test"
  "mwmr_register_test.pdb"
  "mwmr_register_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwmr_register_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
