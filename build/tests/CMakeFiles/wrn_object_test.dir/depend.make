# Empty dependencies file for wrn_object_test.
# This may be replaced when dependencies are built.
