file(REMOVE_RECURSE
  "CMakeFiles/wrn_object_test.dir/wrn_object_test.cpp.o"
  "CMakeFiles/wrn_object_test.dir/wrn_object_test.cpp.o.d"
  "wrn_object_test"
  "wrn_object_test.pdb"
  "wrn_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrn_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
