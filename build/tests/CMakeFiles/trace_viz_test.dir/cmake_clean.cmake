file(REMOVE_RECURSE
  "CMakeFiles/trace_viz_test.dir/trace_viz_test.cpp.o"
  "CMakeFiles/trace_viz_test.dir/trace_viz_test.cpp.o.d"
  "trace_viz_test"
  "trace_viz_test.pdb"
  "trace_viz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_viz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
