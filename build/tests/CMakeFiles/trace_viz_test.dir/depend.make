# Empty dependencies file for trace_viz_test.
# This may be replaced when dependencies are built.
