# Empty compiler generated dependencies file for safe_agreement_test.
# This may be replaced when dependencies are built.
