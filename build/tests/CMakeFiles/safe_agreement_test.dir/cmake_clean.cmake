file(REMOVE_RECURSE
  "CMakeFiles/safe_agreement_test.dir/safe_agreement_test.cpp.o"
  "CMakeFiles/safe_agreement_test.dir/safe_agreement_test.cpp.o.d"
  "safe_agreement_test"
  "safe_agreement_test.pdb"
  "safe_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
