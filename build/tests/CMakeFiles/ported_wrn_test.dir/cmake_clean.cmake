file(REMOVE_RECURSE
  "CMakeFiles/ported_wrn_test.dir/ported_wrn_test.cpp.o"
  "CMakeFiles/ported_wrn_test.dir/ported_wrn_test.cpp.o.d"
  "ported_wrn_test"
  "ported_wrn_test.pdb"
  "ported_wrn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ported_wrn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
