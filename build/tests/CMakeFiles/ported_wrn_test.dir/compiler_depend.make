# Empty compiler generated dependencies file for ported_wrn_test.
# This may be replaced when dependencies are built.
