# Empty compiler generated dependencies file for wrn_anonymous_test.
# This may be replaced when dependencies are built.
