file(REMOVE_RECURSE
  "CMakeFiles/wrn_anonymous_test.dir/wrn_anonymous_test.cpp.o"
  "CMakeFiles/wrn_anonymous_test.dir/wrn_anonymous_test.cpp.o.d"
  "wrn_anonymous_test"
  "wrn_anonymous_test.pdb"
  "wrn_anonymous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrn_anonymous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
