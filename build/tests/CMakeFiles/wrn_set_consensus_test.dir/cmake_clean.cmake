file(REMOVE_RECURSE
  "CMakeFiles/wrn_set_consensus_test.dir/wrn_set_consensus_test.cpp.o"
  "CMakeFiles/wrn_set_consensus_test.dir/wrn_set_consensus_test.cpp.o.d"
  "wrn_set_consensus_test"
  "wrn_set_consensus_test.pdb"
  "wrn_set_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrn_set_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
