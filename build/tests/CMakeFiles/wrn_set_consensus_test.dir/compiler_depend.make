# Empty compiler generated dependencies file for wrn_set_consensus_test.
# This may be replaced when dependencies are built.
