file(REMOVE_RECURSE
  "CMakeFiles/consensus_number_test.dir/consensus_number_test.cpp.o"
  "CMakeFiles/consensus_number_test.dir/consensus_number_test.cpp.o.d"
  "consensus_number_test"
  "consensus_number_test.pdb"
  "consensus_number_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_number_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
