# Empty compiler generated dependencies file for consensus_number_test.
# This may be replaced when dependencies are built.
