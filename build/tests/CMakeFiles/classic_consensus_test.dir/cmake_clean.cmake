file(REMOVE_RECURSE
  "CMakeFiles/classic_consensus_test.dir/classic_consensus_test.cpp.o"
  "CMakeFiles/classic_consensus_test.dir/classic_consensus_test.cpp.o.d"
  "classic_consensus_test"
  "classic_consensus_test.pdb"
  "classic_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classic_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
