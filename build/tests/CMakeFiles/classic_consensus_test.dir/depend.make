# Empty dependencies file for classic_consensus_test.
# This may be replaced when dependencies are built.
