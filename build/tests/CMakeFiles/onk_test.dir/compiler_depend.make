# Empty compiler generated dependencies file for onk_test.
# This may be replaced when dependencies are built.
