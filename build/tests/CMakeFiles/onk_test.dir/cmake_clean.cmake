file(REMOVE_RECURSE
  "CMakeFiles/onk_test.dir/onk_test.cpp.o"
  "CMakeFiles/onk_test.dir/onk_test.cpp.o.d"
  "onk_test"
  "onk_test.pdb"
  "onk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
