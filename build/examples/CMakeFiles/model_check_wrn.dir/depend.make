# Empty dependencies file for model_check_wrn.
# This may be replaced when dependencies are built.
