file(REMOVE_RECURSE
  "CMakeFiles/model_check_wrn.dir/model_check_wrn.cpp.o"
  "CMakeFiles/model_check_wrn.dir/model_check_wrn.cpp.o.d"
  "model_check_wrn"
  "model_check_wrn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_check_wrn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
