file(REMOVE_RECURSE
  "CMakeFiles/onk_tour.dir/onk_tour.cpp.o"
  "CMakeFiles/onk_tour.dir/onk_tour.cpp.o.d"
  "onk_tour"
  "onk_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onk_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
