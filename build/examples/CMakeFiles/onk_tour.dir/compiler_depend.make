# Empty compiler generated dependencies file for onk_tour.
# This may be replaced when dependencies are built.
