file(REMOVE_RECURSE
  "CMakeFiles/universal_objects.dir/universal_objects.cpp.o"
  "CMakeFiles/universal_objects.dir/universal_objects.cpp.o.d"
  "universal_objects"
  "universal_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
