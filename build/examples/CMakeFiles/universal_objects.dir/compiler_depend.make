# Empty compiler generated dependencies file for universal_objects.
# This may be replaced when dependencies are built.
