# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "5")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hierarchy_explorer "/root/repo/build/examples/hierarchy_explorer" "wrn")
set_tests_properties(example_hierarchy_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hierarchy_query "/root/repo/build/examples/hierarchy_explorer" "query" "12" "8" "3" "2")
set_tests_properties(example_hierarchy_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_lab "/root/repo/build/examples/adversary_lab" "3")
set_tests_properties(example_adversary_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_check_wrn "/root/repo/build/examples/model_check_wrn" "3")
set_tests_properties(example_model_check_wrn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_universal_objects "/root/repo/build/examples/universal_objects" "2")
set_tests_properties(example_universal_objects PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_onk_tour "/root/repo/build/examples/onk_tour" "2" "2")
set_tests_properties(example_onk_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
