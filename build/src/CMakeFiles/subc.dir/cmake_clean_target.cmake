file(REMOVE_RECURSE
  "libsubc.a"
)
