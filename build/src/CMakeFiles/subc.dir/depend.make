# Empty dependencies file for subc.
# This may be replaced when dependencies are built.
