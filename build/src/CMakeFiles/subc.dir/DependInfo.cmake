
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/bg_simulation.cpp" "src/CMakeFiles/subc.dir/algorithms/bg_simulation.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/bg_simulation.cpp.o.d"
  "/root/repo/src/algorithms/classic_consensus.cpp" "src/CMakeFiles/subc.dir/algorithms/classic_consensus.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/classic_consensus.cpp.o.d"
  "/root/repo/src/algorithms/onk_algorithms.cpp" "src/CMakeFiles/subc.dir/algorithms/onk_algorithms.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/onk_algorithms.cpp.o.d"
  "/root/repo/src/algorithms/partition_set_consensus.cpp" "src/CMakeFiles/subc.dir/algorithms/partition_set_consensus.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/partition_set_consensus.cpp.o.d"
  "/root/repo/src/algorithms/relaxed_wrn.cpp" "src/CMakeFiles/subc.dir/algorithms/relaxed_wrn.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/relaxed_wrn.cpp.o.d"
  "/root/repo/src/algorithms/renaming.cpp" "src/CMakeFiles/subc.dir/algorithms/renaming.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/renaming.cpp.o.d"
  "/root/repo/src/algorithms/set_election.cpp" "src/CMakeFiles/subc.dir/algorithms/set_election.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/set_election.cpp.o.d"
  "/root/repo/src/algorithms/wrn_anonymous.cpp" "src/CMakeFiles/subc.dir/algorithms/wrn_anonymous.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/wrn_anonymous.cpp.o.d"
  "/root/repo/src/algorithms/wrn_from_sse.cpp" "src/CMakeFiles/subc.dir/algorithms/wrn_from_sse.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/wrn_from_sse.cpp.o.d"
  "/root/repo/src/algorithms/wrn_set_consensus.cpp" "src/CMakeFiles/subc.dir/algorithms/wrn_set_consensus.cpp.o" "gcc" "src/CMakeFiles/subc.dir/algorithms/wrn_set_consensus.cpp.o.d"
  "/root/repo/src/checking/linearizability.cpp" "src/CMakeFiles/subc.dir/checking/linearizability.cpp.o" "gcc" "src/CMakeFiles/subc.dir/checking/linearizability.cpp.o.d"
  "/root/repo/src/checking/progress.cpp" "src/CMakeFiles/subc.dir/checking/progress.cpp.o" "gcc" "src/CMakeFiles/subc.dir/checking/progress.cpp.o.d"
  "/root/repo/src/core/consensus_number.cpp" "src/CMakeFiles/subc.dir/core/consensus_number.cpp.o" "gcc" "src/CMakeFiles/subc.dir/core/consensus_number.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/CMakeFiles/subc.dir/core/hierarchy.cpp.o" "gcc" "src/CMakeFiles/subc.dir/core/hierarchy.cpp.o.d"
  "/root/repo/src/core/tasks.cpp" "src/CMakeFiles/subc.dir/core/tasks.cpp.o" "gcc" "src/CMakeFiles/subc.dir/core/tasks.cpp.o.d"
  "/root/repo/src/objects/onk.cpp" "src/CMakeFiles/subc.dir/objects/onk.cpp.o" "gcc" "src/CMakeFiles/subc.dir/objects/onk.cpp.o.d"
  "/root/repo/src/objects/wrn.cpp" "src/CMakeFiles/subc.dir/objects/wrn.cpp.o" "gcc" "src/CMakeFiles/subc.dir/objects/wrn.cpp.o.d"
  "/root/repo/src/runtime/explorer.cpp" "src/CMakeFiles/subc.dir/runtime/explorer.cpp.o" "gcc" "src/CMakeFiles/subc.dir/runtime/explorer.cpp.o.d"
  "/root/repo/src/runtime/fiber.cpp" "src/CMakeFiles/subc.dir/runtime/fiber.cpp.o" "gcc" "src/CMakeFiles/subc.dir/runtime/fiber.cpp.o.d"
  "/root/repo/src/runtime/history.cpp" "src/CMakeFiles/subc.dir/runtime/history.cpp.o" "gcc" "src/CMakeFiles/subc.dir/runtime/history.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/subc.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/subc.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/subc.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/subc.dir/runtime/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
