file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_indistinguishability.dir/bench_t6_indistinguishability.cpp.o"
  "CMakeFiles/bench_t6_indistinguishability.dir/bench_t6_indistinguishability.cpp.o.d"
  "bench_t6_indistinguishability"
  "bench_t6_indistinguishability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_indistinguishability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
