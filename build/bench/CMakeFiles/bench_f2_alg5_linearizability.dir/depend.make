# Empty dependencies file for bench_f2_alg5_linearizability.
# This may be replaced when dependencies are built.
