file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_alg5_linearizability.dir/bench_f2_alg5_linearizability.cpp.o"
  "CMakeFiles/bench_f2_alg5_linearizability.dir/bench_f2_alg5_linearizability.cpp.o.d"
  "bench_f2_alg5_linearizability"
  "bench_f2_alg5_linearizability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_alg5_linearizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
