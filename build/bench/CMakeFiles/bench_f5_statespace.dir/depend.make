# Empty dependencies file for bench_f5_statespace.
# This may be replaced when dependencies are built.
