file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_statespace.dir/bench_f5_statespace.cpp.o"
  "CMakeFiles/bench_f5_statespace.dir/bench_f5_statespace.cpp.o.d"
  "bench_f5_statespace"
  "bench_f5_statespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
