# Empty compiler generated dependencies file for bench_t7_universal.
# This may be replaced when dependencies are built.
