file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_universal.dir/bench_t7_universal.cpp.o"
  "CMakeFiles/bench_t7_universal.dir/bench_t7_universal.cpp.o.d"
  "bench_t7_universal"
  "bench_t7_universal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_universal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
