# Empty dependencies file for bench_f6_substrate.
# This may be replaced when dependencies are built.
