file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_substrate.dir/bench_f6_substrate.cpp.o"
  "CMakeFiles/bench_f6_substrate.dir/bench_f6_substrate.cpp.o.d"
  "bench_f6_substrate"
  "bench_f6_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
