file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_soak.dir/bench_f8_soak.cpp.o"
  "CMakeFiles/bench_f8_soak.dir/bench_f8_soak.cpp.o.d"
  "bench_f8_soak"
  "bench_f8_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
