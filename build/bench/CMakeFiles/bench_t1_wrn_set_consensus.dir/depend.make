# Empty dependencies file for bench_t1_wrn_set_consensus.
# This may be replaced when dependencies are built.
