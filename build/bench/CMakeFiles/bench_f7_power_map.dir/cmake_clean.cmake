file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_power_map.dir/bench_f7_power_map.cpp.o"
  "CMakeFiles/bench_f7_power_map.dir/bench_f7_power_map.cpp.o.d"
  "bench_f7_power_map"
  "bench_f7_power_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_power_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
