# Empty compiler generated dependencies file for bench_f7_power_map.
# This may be replaced when dependencies are built.
