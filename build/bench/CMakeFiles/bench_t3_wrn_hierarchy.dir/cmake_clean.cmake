file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_wrn_hierarchy.dir/bench_t3_wrn_hierarchy.cpp.o"
  "CMakeFiles/bench_t3_wrn_hierarchy.dir/bench_t3_wrn_hierarchy.cpp.o.d"
  "bench_t3_wrn_hierarchy"
  "bench_t3_wrn_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_wrn_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
