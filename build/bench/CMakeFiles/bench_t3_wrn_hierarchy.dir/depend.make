# Empty dependencies file for bench_t3_wrn_hierarchy.
# This may be replaced when dependencies are built.
