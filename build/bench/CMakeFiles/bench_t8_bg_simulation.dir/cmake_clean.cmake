file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_bg_simulation.dir/bench_t8_bg_simulation.cpp.o"
  "CMakeFiles/bench_t8_bg_simulation.dir/bench_t8_bg_simulation.cpp.o.d"
  "bench_t8_bg_simulation"
  "bench_t8_bg_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_bg_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
