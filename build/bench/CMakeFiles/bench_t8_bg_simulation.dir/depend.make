# Empty dependencies file for bench_t8_bg_simulation.
# This may be replaced when dependencies are built.
