# Empty dependencies file for bench_f4_micro.
# This may be replaced when dependencies are built.
