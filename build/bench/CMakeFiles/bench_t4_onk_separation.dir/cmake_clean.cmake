file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_onk_separation.dir/bench_t4_onk_separation.cpp.o"
  "CMakeFiles/bench_t4_onk_separation.dir/bench_t4_onk_separation.cpp.o.d"
  "bench_t4_onk_separation"
  "bench_t4_onk_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_onk_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
