# Empty compiler generated dependencies file for bench_t4_onk_separation.
# This may be replaced when dependencies are built.
