file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_alg3_cost.dir/bench_f1_alg3_cost.cpp.o"
  "CMakeFiles/bench_f1_alg3_cost.dir/bench_f1_alg3_cost.cpp.o.d"
  "bench_f1_alg3_cost"
  "bench_f1_alg3_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_alg3_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
