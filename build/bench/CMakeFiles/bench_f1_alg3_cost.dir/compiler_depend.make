# Empty compiler generated dependencies file for bench_f1_alg3_cost.
# This may be replaced when dependencies are built.
