# Empty compiler generated dependencies file for bench_t5_consensus_boundary.
# This may be replaced when dependencies are built.
