file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_consensus_boundary.dir/bench_t5_consensus_boundary.cpp.o"
  "CMakeFiles/bench_t5_consensus_boundary.dir/bench_t5_consensus_boundary.cpp.o.d"
  "bench_t5_consensus_boundary"
  "bench_t5_consensus_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_consensus_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
