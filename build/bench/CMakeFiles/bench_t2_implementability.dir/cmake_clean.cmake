file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_implementability.dir/bench_t2_implementability.cpp.o"
  "CMakeFiles/bench_t2_implementability.dir/bench_t2_implementability.cpp.o.d"
  "bench_t2_implementability"
  "bench_t2_implementability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_implementability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
