# Empty dependencies file for bench_t2_implementability.
# This may be replaced when dependencies are built.
