// Experiment F7 — the map of the sub-consensus universe.
//
// One table unifying every object class in the library: for each class and
// each system size N, the best agreement x such that the class solves
// (N, x)-set consensus wait-free with registers (partition calculus; lower
// = stronger). The ordering the papers establish is visible at a glance:
//
//   registers  ≺  1sWRN_k (strictly finer as k shrinks; all consensus
//   number 1)  ≺  2-consensus ≼ O_{2,k} (strictly finer as k grows; all
//   consensus number 2)  ≺  3-consensus ≼ O_{3,k}  ≺ ... ≺ compare&swap.
//
// A sample of cells is cross-validated in the simulator by the tests
// (hierarchy_test, onk_test, wrn_set_consensus_test).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "subc/core/hierarchy.hpp"

namespace {
// Sticky register: consensus number ∞, like CAS.
subc::ObjectClassProfile make_sticky_profile(int max_procs) {
  subc::ObjectClassProfile profile;
  profile.name = "sticky reg";
  for (int procs = 1; procs <= max_procs; ++procs) {
    profile.best_agreement.push_back(1);
  }
  return profile;
}
}  // namespace

int main() {
  using namespace subc;
  constexpr int kMaxProcs = 16;

  std::vector<ObjectClassProfile> profiles;
  profiles.push_back(profile_registers(kMaxProcs));
  profiles.push_back(profile_wrn(8, kMaxProcs));
  profiles.push_back(profile_wrn(5, kMaxProcs));
  profiles.push_back(profile_wrn(3, kMaxProcs));
  profiles.push_back(profile_consensus(2, kMaxProcs));
  profiles.push_back(profile_onk(2, 2, kMaxProcs));
  profiles.push_back(profile_onk(2, 4, kMaxProcs));
  profiles.push_back(profile_consensus(3, kMaxProcs));
  profiles.push_back(profile_onk(3, 3, kMaxProcs));
  profiles.push_back(profile_consensus(5, kMaxProcs));
  profiles.push_back(make_sticky_profile(kMaxProcs));
  profiles.push_back(profile_cas(kMaxProcs));

  std::printf("F7: best (N, x)-set consensus per object class "
              "(x; lower = stronger)\n\n");
  std::printf("%-14s |", "class \\ N");
  for (int procs = 2; procs <= kMaxProcs; ++procs) {
    std::printf(" %3d", procs);
  }
  std::printf("\n---------------+%s\n",
              "------------------------------------------------------------");
  for (const auto& profile : profiles) {
    std::printf("%-14s |", profile.name.c_str());
    for (int procs = 2; procs <= kMaxProcs; ++procs) {
      std::printf(" %3d",
                  profile.best_agreement[static_cast<std::size_t>(procs - 1)]);
    }
    std::printf("\n");
  }

  // Sanity relations the papers establish, enforced on the full table.
  bool ok = true;
  const auto value = [&](std::size_t row, int procs) {
    return profiles[row].best_agreement[static_cast<std::size_t>(procs - 1)];
  };
  for (int procs = 2; procs <= kMaxProcs; ++procs) {
    // registers weakest, CAS strongest.
    for (std::size_t row = 1; row + 1 < profiles.size(); ++row) {
      ok = ok && value(0, procs) >= value(row, procs);
      ok = ok && value(row, procs) >= value(profiles.size() - 1, procs);
    }
    // 1sWRN chain: smaller k at least as strong (rows 1..3 are k=8,5,3).
    ok = ok && value(1, procs) >= value(2, procs);
    ok = ok && value(2, procs) >= value(3, procs);
    // O_{2,k} at least as strong as 2-consensus, improving with k.
    ok = ok && value(4, procs) >= value(5, procs);
    ok = ok && value(5, procs) >= value(6, procs);
    // every 1sWRN_k weaker than 2-consensus somewhere covered by: at N=2,
    // 1sWRN gives 2 (no help) while 2-consensus gives 1.
  }
  ok = ok && value(3, 2) == 2 && value(4, 2) == 1;  // the level-1/2 gap

  std::printf(
      "\nreading: every 1sWRN_k column dominates registers and is dominated\n"
      "by 2-consensus (the paper's 'between registers and 2-consensus');\n"
      "every O_{2,k} dominates 2-consensus and improves strictly with k at\n"
      "the sizes N_k = 2k+2+k (the 2016 hierarchy); compare&swap closes the\n"
      "map at x = 1.\n");
  std::vector<subc_bench::Json> rows;
  for (const auto& profile : profiles) {
    subc_bench::Json row;
    row.set("class", profile.name);
    std::vector<subc_bench::Json> cells;
    for (int procs = 2; procs <= kMaxProcs; ++procs) {
      subc_bench::Json cell;
      cell.set("procs", procs)
          .set("best_agreement",
               profile.best_agreement[static_cast<std::size_t>(procs - 1)]);
      cells.push_back(cell);
    }
    row.set("cells", cells);
    rows.push_back(row);
  }
  subc_bench::Json out;
  out.set("bench", "F7").set("classes", rows).set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_F7.json", out);

  std::printf("\nF7 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
