// Experiment T5 — the consensus-number boundary of WRN_k (Theorem 1 /
// Lemma 38 / §3's observation that WRN_2 = SWAP).
//
// The same "write mine, read next" protocol is run for 2 processes on WRN_k
// for k = 2..8:
//   * k = 2: exhaustively validated as a correct 2-consensus algorithm
//     (SWAP has consensus number 2);
//   * k ≥ 3: the explorer exhibits a disagreeing schedule (and prints it) —
//     the executable face of consensus number 1.
// Additionally the classic level-2 objects are validated as controls. All
// explorations run on the parallel work-sharing explorer (the reported
// disagreement schedule is the canonically least one, so it is identical at
// every thread count); results also land in BENCH_T5.json.
#include <cstdio>

#include "bench_util.hpp"
#include "subc/algorithms/classic_consensus.hpp"
#include "subc/core/consensus_number.hpp"
#include "subc/core/tasks.hpp"

namespace {

using namespace subc;

ConsensusWorldBody wrn_attempt(int k) {
  return [k](ScheduleDriver& driver, const std::vector<Value>& inputs) {
    Runtime rt;
    WrnObject wrn(k);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(consensus2_attempt_from_wrn(
            ctx, wrn, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_validity(inputs, run.decisions);
    check_agreement(run.decisions);
  };
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("T5: consensus-number boundary of WRN_k (%d threads)\n\n",
              threads);
  std::printf("protocol: role b does t = WRN(b, v_b); decide t != ⊥ ? t : v_b\n\n");
  std::printf("%4s  %-12s  %s\n", "k", "verdict", "evidence");
  bool ok = true;
  std::vector<subc_bench::Json> boundary_rows;
  const subc_bench::Stopwatch total_sw;
  std::int64_t total_executions = 0;
  std::int64_t total_reduced = 0;

  for (int k = 2; k <= 8; ++k) {
    subc_bench::Json row;
    row.set("k", k);
    if (k == 2) {
      const auto check = check_consensus_algorithm(
          wrn_attempt(2), {{0, 1}, {1, 0}, {7, 7}}, 500'000, threads);
      const bool pass = check.ok() && check.exhaustive;
      ok = ok && pass;
      total_executions += check.executions;
      total_reduced += check.reduced_subtrees;
      std::printf("%4d  %-12s  solves 2-consensus; %lld executions, "
                  "exhaustive\n", k, pass ? "SWAP (=2)" : "FAIL",
                  static_cast<long long>(check.executions));
      row.set("verdict", pass ? "consensus number 2" : "FAIL")
          .set("executions", check.executions);
    } else {
      const auto violation =
          find_consensus_violation(wrn_attempt(k), {0, 1}, 500'000, threads);
      const bool pass = violation.has_value();
      ok = ok && pass;
      std::printf("%4d  %-12s  %s\n", k, pass ? "level 1" : "FAIL",
                  pass ? "disagreement schedule found" : "no violation found");
      row.set("verdict", pass ? "consensus number 1" : "FAIL")
          .set("violation_found", pass);
    }
    boundary_rows.push_back(row);
  }

  std::printf("\nprotocol synthesis (announce/WRN/decide family, "
              "k^2 x 25 protocols,\neach exhaustively model-checked):\n");
  std::printf("%4s  %10s  %10s\n", "k", "protocols", "correct");
  std::vector<subc_bench::Json> synthesis_rows;
  for (int k = 2; k <= 6; ++k) {
    const ProtocolSearchResult search = search_wrn_two_consensus_protocols(k);
    std::printf("%4d  %10ld  %10ld%s\n", k, search.protocols_checked,
                search.correct,
                k == 2 ? "  (SWAP: winners exist)" : "");
    ok = ok && ((k == 2) == (search.correct > 0));
    subc_bench::Json row;
    row.set("k", k)
        .set("protocols_checked",
             static_cast<std::int64_t>(search.protocols_checked))
        .set("correct", static_cast<std::int64_t>(search.correct));
    synthesis_rows.push_back(row);
  }

  std::printf("\ncontrols (all must solve 2-consensus exhaustively):\n");
  struct Control {
    const char* name;
    ConsensusWorldBody body;
  };
  const Control controls[] = {
      {"swap", [](ScheduleDriver& d, const std::vector<Value>& in) {
         Runtime rt;
         TwoConsensusShared sh;
         SwapRegister sw(kBottom);
         for (int p = 0; p < 2; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(consensus2_from_swap(ctx, sh, sw, p,
                                             in[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(d);
         check_all_done_and_decided(run);
         check_validity(in, run.decisions);
         check_agreement(run.decisions);
       }},
      {"test&set", [](ScheduleDriver& d, const std::vector<Value>& in) {
         Runtime rt;
         TwoConsensusShared sh;
         TestAndSet tas;
         for (int p = 0; p < 2; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(consensus2_from_tas(ctx, sh, tas, p,
                                            in[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(d);
         check_all_done_and_decided(run);
         check_validity(in, run.decisions);
         check_agreement(run.decisions);
       }},
      {"queue", [](ScheduleDriver& d, const std::vector<Value>& in) {
         Runtime rt;
         TwoConsensusShared sh;
         FifoQueue q{0};
         for (int p = 0; p < 2; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(consensus2_from_queue(ctx, sh, q, p,
                                              in[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(d);
         check_all_done_and_decided(run);
         check_validity(in, run.decisions);
         check_agreement(run.decisions);
       }},
  };
  for (const auto& control : controls) {
    const auto check = check_consensus_algorithm(
        control.body, {{0, 1}, {1, 0}}, 500'000, threads);
    ok = ok && check.ok();
    total_executions += check.executions;
    total_reduced += check.reduced_subtrees;
    std::printf("  %-9s %s (%lld executions)\n", control.name,
                check.ok() ? "ok" : "FAIL",
                static_cast<long long>(check.executions));
  }

  const double total_ms = total_sw.ms();
  subc_bench::Json out;
  out.set("bench", "T5")
      .set("threads", threads)
      .set("total_ms", total_ms)
      .set("checked_executions", total_executions)
      .set("executions_per_sec",
           total_ms > 0 ? 1000.0 * static_cast<double>(total_executions) /
                              total_ms
                        : 0.0)
      .set("boundary", boundary_rows)
      .set("synthesis", synthesis_rows)
      .set("pass", ok);
  subc_bench::set_reduction_fields(out, total_reduced, total_executions);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T5.json", out);

  std::printf("\nT5 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
