// Experiment T9 — machine-checked recoverable consensus numbers (the
// crash-recovery model: Explorer::Options::max_crashes + max_recoveries,
// the Durability axis of the object zoo).
//
// One 2-proposer consensus world per {object, durability} pair, exhaustively
// explored over the fault grid f x r in {0,1}^2 with every cell run at
// {fiber, stepped} x {kNone, kSleepSets} x threads {1, 4}:
//   * durable sticky register: solves consensus at every fault budget —
//     crash-and-restart included (re-sticking is idempotent);
//   * volatile sticky register: still solves crash-STOP consensus (its
//     single RMW decides atomically with the mutation) but is convicted
//     under crash-and-RESTART — the crash wipes the stuck value and a
//     recovered incarnation re-sticks a different one;
//   * swap — durable or volatile — solves crash-stop but is convicted
//     under crash-and-restart: swap is not idempotent, so a recovered
//     loser re-swaps, reads its own first incarnation's residue (previous
//     = its own role), and decides its own value against the winner. The
//     machine check thus separates "consensus number 2" from "recoverable
//     consensus number": durability is necessary but not sufficient — the
//     deciding RMW must also be idempotent.
// Convicted cells shrink their witness (Options::shrink_violations); the
// verdict, tallies, violation message and shrunk decision string must be
// bit-identical across both engines, both reductions, and both thread
// counts. Results land in BENCH_T9.json.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "subc/algorithms/classic_consensus.hpp"
#include "subc/algorithms/stepped_bodies.hpp"
#include "subc/objects/sticky_register.hpp"
#include "subc/objects/swap.hpp"
#include "subc/runtime/runtime.hpp"

namespace {

using namespace subc;

constexpr Value kInputs[2] = {100, 101};

/// Crash-tolerant consensus validator: agreement + validity over the
/// processes that actually decided (a crashed-for-good proposer decides
/// nothing, which is allowed; two different decisions are not).
void require_recoverable_consensus(const Runtime::RunResult& run) {
  Value decided = kBottom;
  for (std::size_t p = 0; p < run.decisions.size(); ++p) {
    const Value d = run.decisions[p];
    if (d == kBottom) {
      continue;
    }
    if (d != kInputs[0] && d != kInputs[1]) {
      throw SpecViolation("validity: process " + std::to_string(p) +
                          " decided unproposed value " + to_string(d));
    }
    if (decided == kBottom) {
      decided = d;
    } else if (d != decided) {
      throw SpecViolation("agreement: decisions " + to_string(decided) +
                          " and " + to_string(d));
    }
  }
}

ExecutionBody sticky_world(Durability durability, Engine engine) {
  return [durability, engine](ScheduleDriver& driver) {
    Runtime rt;
    StickyRegister sticky(durability);
    for (int p = 0; p < 2; ++p) {
      if (engine == Engine::kFiber) {
        rt.add_process([&sticky, p](Context& ctx) {
          ctx.decide(consensus_from_sticky(ctx, sticky, kInputs[p]));
        });
      } else {
        rt.add_stepped(SteppedStickyConsensus{&sticky, kInputs[p]});
      }
    }
    require_recoverable_consensus(rt.run(driver));
  };
}

ExecutionBody swap_world(Durability durability, Engine engine) {
  return [durability, engine](ScheduleDriver& driver) {
    Runtime rt;
    TwoConsensusShared shared;
    SwapRegister swap(kBottom, durability);
    for (int p = 0; p < 2; ++p) {
      if (engine == Engine::kFiber) {
        rt.add_process([&shared, &swap, p](Context& ctx) {
          ctx.decide(consensus2_from_swap(ctx, shared, swap, p, kInputs[p]));
        });
      } else {
        rt.add_stepped(SteppedSwapConsensus{&shared, &swap, p, kInputs[p]});
      }
    }
    require_recoverable_consensus(rt.run(driver));
  };
}

using WorldFactory = ExecutionBody (*)(Durability, Engine);

struct GridRow {
  const char* object;
  WorldFactory factory;
  /// Verdicts indexed by [durability][f][r]: true = solves exhaustively.
  bool solves[2][2][2];
};

// The machine-checked claim grid. Durable sticky solves consensus at every
// fault budget; volatile sticky survives crash-stop but not restart; swap
// survives crash-stop at either durability but loses its consensus power
// the moment restarts are allowed (non-idempotent RMW).
const GridRow kGrid[] = {
    {"sticky", sticky_world,
     {/*durable*/ {{true, true}, {true, true}},
      /*volatile*/ {{true, true}, {true, false}}}},
    {"swap", swap_world,
     {/*durable*/ {{true, true}, {true, false}},
      /*volatile*/ {{true, true}, {true, false}}}},
};

struct CellOutcome {
  bool ok = false;
  bool complete = false;
  std::int64_t executions = 0;
  std::int64_t crashed = 0;
  std::int64_t recovered = 0;
  std::int64_t stuck = 0;
  std::string violation;
  std::string trace;
};

}  // namespace

int main() {
  const int grid_threads[] = {1, 4};
  std::printf("T9: recoverable consensus numbers under crash-and-restart\n");
  std::printf("(2 proposers; every cell = fiber+stepped x none+sleep x "
              "threads {1,4}, bit-identity required)\n\n");
  std::printf("%-7s %-9s %2s %2s  %-10s %12s %9s %10s\n", "object", "durab",
              "f", "r", "verdict", "executions", "crashed", "recovered");

  bool ok = true;
  std::vector<subc_bench::Json> rows;
  const subc_bench::Stopwatch total_sw;
  std::int64_t total_executions = 0;
  std::int64_t total_reduced = 0;
  std::int64_t total_crashed = 0;
  std::int64_t total_recovered = 0;
  std::int64_t total_stuck = 0;

  for (const GridRow& grid_row : kGrid) {
    for (const Durability durability :
         {Durability::kDurable, Durability::kVolatile}) {
      const int d = durability == Durability::kDurable ? 0 : 1;
      for (const int f : {0, 1}) {
        for (const int r : {0, 1}) {
          // Every {engine, reduction, threads} cell must agree with the
          // first cell bit-for-bit: same verdict, tallies, violation
          // message, and shrunk witness decision string.
          std::optional<CellOutcome> first;
          bool identical = true;
          for (const Engine engine : {Engine::kFiber, Engine::kStepped}) {
            for (const Reduction reduction :
                 {Reduction::kNone, Reduction::kSleepSets}) {
              for (const int threads : grid_threads) {
                Explorer::Options opts;
                opts.reduction = reduction;
                opts.threads = threads;
                opts.max_crashes = f;
                opts.max_recoveries = r;
                opts.shrink_violations = true;
                const auto result = Explorer::explore(
                    grid_row.factory(durability, engine), opts);
                total_executions += result.executions;
                total_reduced += result.reduced_subtrees;
                total_crashed += result.crashed_executions;
                total_recovered += result.recovered_executions;
                total_stuck += result.stuck_executions;
                CellOutcome cell;
                cell.ok = result.ok();
                cell.complete = result.complete;
                cell.executions = result.executions;
                cell.crashed = result.crashed_executions;
                cell.recovered = result.recovered_executions;
                cell.stuck = result.stuck_executions;
                cell.violation = result.violation.value_or("");
                cell.trace = format_trace(result.violating_trace);
                if (!first.has_value()) {
                  first = cell;
                } else {
                  identical = identical && cell.ok == first->ok &&
                              cell.violation == first->violation &&
                              cell.trace == first->trace;
                  // Execution tallies are only comparable within a
                  // reduction; pin them against the kNone reference.
                  if (reduction == Reduction::kNone) {
                    identical = identical &&
                                cell.executions == first->executions &&
                                cell.crashed == first->crashed &&
                                cell.recovered == first->recovered;
                  }
                }
                // A convicted cell's shrunk witness must replay.
                if (result.violation.has_value()) {
                  bool replays = false;
                  try {
                    Explorer::replay(grid_row.factory(durability, engine),
                                     result.violating_trace);
                  } catch (const std::exception&) {
                    replays = true;
                  }
                  identical = identical && replays;
                }
              }
            }
          }

          const bool expect_solves = grid_row.solves[d][f][r];
          const bool solves = first->ok && first->complete;
          const bool faults_exercised =
              (f == 0 || !solves || first->crashed > 0) &&
              (r == 0 || f == 0 || !solves || first->recovered > 0);
          const bool pass =
              identical && solves == expect_solves && faults_exercised;
          ok = ok && pass;

          const char* verdict = solves ? "solves" : "convicted";
          std::printf("%-7s %-9s %2d %2d  %-10s %12lld %9lld %10lld\n",
                      grid_row.object, d == 0 ? "durable" : "volatile", f, r,
                      pass ? verdict : "FAIL",
                      static_cast<long long>(first->executions),
                      static_cast<long long>(first->crashed),
                      static_cast<long long>(first->recovered));
          if (!solves) {
            std::printf("        witness: %s\n        %s\n",
                        first->trace.c_str(), first->violation.c_str());
          }

          subc_bench::Json row;
          row.set("object", grid_row.object)
              .set("durability", d == 0 ? "durable" : "volatile")
              .set("max_crashes", f)
              .set("max_recoveries", r)
              .set("verdict", verdict)
              .set("executions", first->executions)
              .set("crashed_executions", first->crashed)
              .set("recovered_executions", first->recovered)
              .set("cells_identical", identical)
              .set("pass", pass);
          if (!solves) {
            row.set("violation", first->violation)
                .set("shrunk_trace", first->trace);
          }
          rows.push_back(row);
        }
      }
    }
  }

  const double total_ms = total_sw.ms();
  subc_bench::Json out;
  out.set("bench", "T9")
      .set("threads", grid_threads[1])
      .set("total_ms", total_ms)
      .set("grid", rows)
      .set("pass", ok);
  subc_bench::set_rate_fields(out, total_executions, total_ms);
  subc_bench::set_reduction_fields(out, total_reduced, total_executions);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 1, total_crashed, total_stuck);
  subc_bench::set_recovery_fields(out, 1, total_recovered);
  subc_bench::write_json("BENCH_T9.json", out);

  std::printf("\nT9 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
