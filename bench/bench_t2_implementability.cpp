// Experiment T2 — Theorem 41: the (n,k) ← (m,j) implementability matrix.
//
// For a grid of source objects (m,j) and targets (n,k), print whether
// (n,k)-set consensus is wait-free implementable from (m,j)-set-consensus
// objects and registers, and cross-check the closed-form partition bound
// against the all-partitions dynamic program on the whole grid.
#include <cstdio>

#include "bench_util.hpp"
#include "subc/core/hierarchy.hpp"

int main() {
  using namespace subc;

  std::printf("T2: Theorem 41 implementability — (n,k) from (m,j)\n\n");

  // Cross-check closed form vs DP on a broad grid.
  long checked = 0;
  long mismatches = 0;
  for (int m = 2; m <= 14; ++m) {
    for (int j = 1; j < m; ++j) {
      for (int n = 1; n <= 40; ++n) {
        ++checked;
        if (sc_partition_agreement(n, m, j) !=
            sc_partition_agreement_dp(n, m, j)) {
          ++mismatches;
        }
      }
    }
  }
  std::printf("closed form vs optimal-partition DP: %ld combinations, "
              "%ld mismatches\n\n", checked, mismatches);

  // Implementability of (n,k) from a few canonical sources.
  const std::pair<int, int> sources[] = {{2, 1}, {3, 1}, {3, 2},
                                         {4, 3}, {5, 2}, {6, 4}};
  for (const auto& [m, j] : sources) {
    std::printf("source (m,j) = (%d,%d)  [consensus number %d]\n", m, j,
                sc_consensus_number(m, j));
    std::printf("   n\\k |");
    for (int k = 1; k <= 8; ++k) {
      std::printf(" %2d", k);
    }
    std::printf("\n  -----+%s\n", "------------------------");
    for (int n = 2; n <= 12; ++n) {
      std::printf("   %3d |", n);
      for (int k = 1; k <= 8; ++k) {
        std::printf("  %s", k >= n             ? "-"
                            : sc_implementable(n, k, m, j) ? "Y"
                                                           : ".");
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("Paper example: (12,8) from (3,2) -> %s (expected Y)\n",
              sc_implementable(12, 8, 3, 2) ? "Y" : "N");
  std::printf("              (12,7) from (3,2) -> %s (expected N)\n",
              sc_implementable(12, 7, 3, 2) ? "Y" : "N");

  const bool ok = mismatches == 0 && sc_implementable(12, 8, 3, 2) &&
                  !sc_implementable(12, 7, 3, 2);
  subc_bench::Json out;
  out.set("bench", "T2")
      .set("combinations_checked", static_cast<std::int64_t>(checked))
      .set("mismatches", static_cast<std::int64_t>(mismatches))
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T2.json", out);
  std::printf("\nT2 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
