// Experiment T6 — the mechanized critical-state case analysis (Lemma 38 and
// the GAC components): a census of indistinguishability coverage.
//
// For WRN_k, all (state, s_P, s_Q) triples must be covered by one of the
// four Herlihy cases when k ≥ 3 (this *is* Lemma 38's case analysis run by
// machine), while k = 2 must leave exactly the adjacent-index pairs
// uncovered (the escape hatch by which SWAP reaches consensus number 2).
// For GAC(n,i), the fresh-object race states are uncovered by design (the
// consensus mechanism), and the wrap-around region is fully inert.
#include <cstdio>

#include "bench_util.hpp"
#include "subc/core/consensus_number.hpp"

int main() {
  using namespace subc;

  std::printf("T6: critical-state indistinguishability census\n\n");
  std::printf("WRN_k over domain {1,2}, all slot states:\n");
  std::printf("%4s %10s %10s %12s  %s\n", "k", "states", "pairs", "uncovered",
              "verdict");
  bool ok = true;
  std::vector<subc_bench::Json> wrn_rows;
  for (int k = 2; k <= 8; ++k) {
    const ValenceReport report = check_wrn_valence(k);
    const bool expect_covered = k >= 3;
    const bool pass = expect_covered == report.all_covered();
    ok = ok && pass;
    std::printf("%4d %10ld %10ld %12zu  %s\n", k, report.states_checked,
                report.pairs_checked, report.uncovered.size(),
                expect_covered
                    ? (pass ? "all covered -> Lemma 38 applies" : "FAIL")
                    : (pass ? "uncovered -> SWAP escapes (cons nr 2)"
                            : "FAIL"));
    subc_bench::Json row;
    row.set("k", k)
        .set("states", static_cast<std::int64_t>(report.states_checked))
        .set("pairs", static_cast<std::int64_t>(report.pairs_checked))
        .set("uncovered", static_cast<std::int64_t>(report.uncovered.size()))
        .set("pass", pass);
    wrn_rows.push_back(row);
  }

  std::printf("\nGAC(n,i) over domain {1,2}, canonical arrival states:\n");
  std::printf("%4s %4s %10s %10s %12s  %s\n", "n", "i", "states", "pairs",
              "uncovered", "note");
  std::vector<subc_bench::Json> gac_rows;
  for (int n = 1; n <= 4; ++n) {
    for (int i = 1; i <= 3; ++i) {
      const ValenceReport report = check_gac_valence(n, i);
      // Race states must exist (the object has synchronization power).
      const bool pass = !report.all_covered();
      ok = ok && pass;
      std::printf("%4d %4d %10ld %10ld %12zu  %s\n", n, i,
                  report.states_checked, report.pairs_checked,
                  report.uncovered.size(),
                  pass ? "races exist (consensus mechanism)" : "FAIL");
      subc_bench::Json row;
      row.set("n", n)
          .set("i", i)
          .set("states", static_cast<std::int64_t>(report.states_checked))
          .set("pairs", static_cast<std::int64_t>(report.pairs_checked))
          .set("uncovered",
               static_cast<std::int64_t>(report.uncovered.size()))
          .set("pass", pass);
      gac_rows.push_back(row);
    }
  }

  std::printf(
      "\nreading: 'covered' means every pending-step pair at every state is\n"
      "hidden from one of the two processes (overwrite or commute) — the\n"
      "precondition of the critical-state impossibility argument for\n"
      "2-process consensus. WRN_k (k>=3): fully covered, hence consensus\n"
      "number 1 (Theorem 1). WRN_2 = SWAP: adjacent-index pairs uncovered,\n"
      "hence the 2-consensus protocol exists (validated in T5).\n");
  subc_bench::Json out;
  out.set("bench", "T6")
      .set("wrn", wrn_rows)
      .set("gac", gac_rows)
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T6.json", out);
  std::printf("\nT6 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
