// Shared helpers for the experiment binaries: machine-readable JSON result
// files (BENCH_<ID>.json, written into the current working directory so the
// perf trajectory can be tracked across PRs), wall-clock timing, and the
// worker-thread count used when benches drive the parallel explorer.
//
// The JSON emitter is deliberately tiny: flat objects whose values are
// numbers, strings, booleans, nested objects, or arrays of objects — enough
// for result grids, and zero dependencies.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "subc/objects/register.hpp"
#include "subc/runtime/arena.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/policy.hpp"

namespace subc_bench {

class Json {
 public:
  Json& set(const std::string& key, const std::string& v) {
    return put(key, quote(v));
  }
  Json& set(const std::string& key, const char* v) {
    return put(key, quote(v));
  }
  Json& set(const std::string& key, bool v) {
    return put(key, v ? "true" : "false");
  }
  Json& set(const std::string& key, double v) {
    std::ostringstream os;
    os << v;
    return put(key, os.str());
  }
  Json& set(const std::string& key, std::int64_t v) {
    return put(key, std::to_string(v));
  }
  Json& set(const std::string& key, int v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  Json& set(const std::string& key, long long v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  Json& set(const std::string& key, const Json& v) { return put(key, v.str()); }
  Json& set(const std::string& key, const std::vector<std::int64_t>& xs) {
    std::string out = "[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += std::to_string(xs[i]);
    }
    out += "]";
    return put(key, std::move(out));
  }
  Json& set(const std::string& key, const std::vector<Json>& rows) {
    std::string out = "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += rows[i].str();
    }
    out += "]";
    return put(key, std::move(out));
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  Json& put(const std::string& key, std::string encoded) {
    fields_.emplace_back(key, std::move(encoded));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Stamps the partial-order-reduction telemetry carried by every
/// BENCH_<ID>.json: `reduced_subtrees` (how many redundant scheduling
/// options sleep sets skipped across all explorations the bench ran) and
/// `reduction_factor` ((executions + reduced_subtrees) / executions). Each
/// skipped subtree holds at least one execution, so the factor lower-bounds
/// the raw/reduced execution-count ratio; benches that never drive the
/// exhaustive explorer pass (0, 0) and report factor 1.
inline void set_reduction_fields(Json& json, std::int64_t reduced_subtrees,
                                 std::int64_t executions) {
  json.set("reduced_subtrees", reduced_subtrees);
  json.set("reduction_factor",
           executions > 0
               ? static_cast<double>(executions + reduced_subtrees) /
                     static_cast<double>(executions)
               : 1.0);
}

/// Per-policy smoke cells stamped into every BENCH_<ID>.json: one PCT run
/// and one crash-adversary run over a small canonical world, each watched
/// by an `AccessCounters` observer. The cells prove the adversarial policy
/// layer and the observer plumbing are alive in the bench stage, and give
/// every artifact a `schedule_policy` field plus observer-counter totals so
/// the perf trajectory records which policies each binary was built against.
inline void set_policy_fields(Json& json) {
  const subc::ExecutionBody body = [](subc::ScheduleDriver& driver) {
    subc::Runtime rt;
    subc::RegisterArray<> regs(3, subc::kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&regs, p](subc::Context& ctx) {
        regs[static_cast<std::size_t>(p)].write(ctx, p);
        (void)regs[static_cast<std::size_t>((p + 1) % 3)].read(ctx);
        (void)ctx.choose(2);
      });
    }
    rt.run(driver);
  };

  std::vector<Json> cells;
  std::int64_t steps = 0;
  std::int64_t chooses = 0;
  std::int64_t crashes = 0;

  {
    subc::AccessCounters counters;
    subc::PctPolicy policy(/*seed=*/1, /*depth=*/2, /*horizon=*/64);
    const auto violation = subc::run_one(body, policy, &counters);
    Json cell;
    cell.set("policy", "pct(seed=1,depth=2,horizon=64)");
    cell.set("steps", counters.steps());
    cell.set("chooses", counters.chooses());
    cell.set("crashes", counters.crashes());
    cell.set("ok", !violation.has_value());
    cells.push_back(cell);
    steps += counters.steps();
    chooses += counters.chooses();
    crashes += counters.crashes();
  }
  {
    subc::AccessCounters counters;
    subc::RandomDriver inner(/*seed=*/1);
    subc::CrashAdversary adversary(
        inner, {subc::CrashAdversary::CrashPoint{/*victim=*/1,
                                                 /*after_steps=*/1}});
    const auto violation = subc::run_one(body, adversary, &counters);
    Json cell;
    cell.set("policy", "crash_adversary(plan=[p1@1],inner=random(seed=1))");
    cell.set("steps", counters.steps());
    cell.set("chooses", counters.chooses());
    cell.set("crashes", counters.crashes());
    cell.set("ok", !violation.has_value());
    cells.push_back(cell);
    steps += counters.steps();
    chooses += counters.chooses();
    crashes += counters.crashes();
  }

  json.set("schedule_policy", "pct(depth=2,horizon=64)+crash_adversary(f=1)");
  json.set("observer_steps", steps);
  json.set("observer_chooses", chooses);
  json.set("observer_crashes", crashes);
  json.set("policy_smoke", cells);
}

/// Stamps a throughput cell: `executions` completed in `elapsed_ms` of wall
/// clock → `executions_per_sec` (0 when nothing ran or no time passed).
/// This is the headline number the perf trajectory tracks across PRs.
inline void set_rate_fields(Json& json, std::int64_t executions,
                            double elapsed_ms) {
  json.set("executions", executions);
  json.set("elapsed_ms", elapsed_ms);
  json.set("executions_per_sec",
           elapsed_ms > 0.0
               ? static_cast<double>(executions) / (elapsed_ms / 1000.0)
               : 0.0);
}

/// Stamps the crash-exploration telemetry carried by benches that drive the
/// exhaustive explorer with crash branching (Explorer::Options::max_crashes):
/// the crash budget, how many explored executions actually contained a
/// crash, and how many were cut by the step-quota watchdog. Benches that
/// explore crash-free pass (0, 0, 0) so every artifact carries the cells and
/// the perf trajectory can tell "no crashes explored" from "field missing".
inline void set_crash_fields(Json& json, int max_crashes,
                             std::int64_t crashed_executions,
                             std::int64_t stuck_executions) {
  json.set("max_crashes", static_cast<std::int64_t>(max_crashes));
  json.set("crashed_executions", crashed_executions);
  json.set("stuck_executions", stuck_executions);
}

/// Stamps the crash-recovery telemetry (Explorer::Options::max_recoveries):
/// the restart budget and how many explored executions actually restarted a
/// crashed process. Benches that explore without recovery branching pass
/// (0, 0) so every artifact carries the cells and the perf trajectory can
/// tell "no restarts explored" from "field missing".
inline void set_recovery_fields(Json& json, int max_recoveries,
                                std::int64_t recovered_executions) {
  json.set("max_recoveries", static_cast<std::int64_t>(max_recoveries));
  json.set("recovered_executions", recovered_executions);
}

/// Stamps the stateful-exploration telemetry (Explorer::Options::stateful):
/// the cuts taken, distinct states recorded, visited-set occupancy
/// (states / capacity) and hit rate (cuts / (cuts + states) — the fraction
/// of probes that found their fingerprint already present). Benches that
/// explore stateless pass (0, 0, capacity) so every artifact carries the
/// cells and the perf trajectory can tell "stateful off" from "field
/// missing".
inline void set_stateful_fields(Json& json, std::int64_t stateful_cuts,
                                std::int64_t stateful_states,
                                std::int64_t capacity) {
  json.set("stateful_cuts", stateful_cuts);
  json.set("stateful_states", stateful_states);
  json.set("stateful_occupancy",
           capacity > 0 ? static_cast<double>(stateful_states) /
                              static_cast<double>(capacity)
                        : 0.0);
  json.set("stateful_hit_rate",
           stateful_cuts + stateful_states > 0
               ? static_cast<double>(stateful_cuts) /
                     static_cast<double>(stateful_cuts + stateful_states)
               : 0.0);
}

/// Stamps the agreement-as-a-service soak telemetry (bench_f8's
/// multi-instance harness over runtime/instance.hpp): sustained operation
/// throughput, decision-latency percentiles in virtual-clock ticks, the
/// instance-table high-water mark and GC volume, and the audit sampler's
/// totals. `soak_violations` must stay 0 — the soak self-gates on it.
/// The sharding cells describe the headline (multi-shard) configuration:
/// `soak_shards` workers, per-shard applied-op counts in `soak_shard_ops`,
/// cross-shard dedup memo hits, and `soak_scaling_x` — the aggregate ops/s
/// of the headline configuration over the 1-shard configuration (stamped as
/// measured even on hosts with too few cores for the scaling self-gate).
inline void set_soak_fields(Json& json, double ops_per_sec, double p50_ticks,
                            double p99_ticks, std::int64_t peak_live,
                            std::int64_t instances_gcd, std::int64_t audited,
                            std::int64_t violations, std::int64_t shards = 1,
                            const std::vector<std::int64_t>& shard_ops = {},
                            std::int64_t dedup_hits = 0,
                            double scaling_x = 1.0) {
  json.set("soak_ops_per_sec", ops_per_sec);
  json.set("soak_p50_ticks", p50_ticks);
  json.set("soak_p99_ticks", p99_ticks);
  json.set("soak_peak_live", peak_live);
  json.set("soak_instances_gcd", instances_gcd);
  json.set("soak_audited", audited);
  json.set("soak_violations", violations);
  json.set("soak_shards", shards);
  json.set("soak_shard_ops", shard_ops);
  json.set("soak_dedup_hits", dedup_hits);
  json.set("soak_scaling_x", scaling_x);
}

/// Allocation-counter snapshot (`subc::alloc_counters()`): arena growth and
/// reuse plus fiber-stack pool hits across everything the bench ran so far.
/// Reuse counters climbing while chunk/alloc counters stay flat is the
/// allocation-free hot path working as designed.
inline Json alloc_counter_cell(const subc::AllocCounters& c) {
  Json cell;
  cell.set("arena_chunks", static_cast<std::int64_t>(c.arena_chunks));
  cell.set("arena_bytes", static_cast<std::int64_t>(c.arena_bytes));
  cell.set("arena_reuses", static_cast<std::int64_t>(c.arena_reuses));
  cell.set("fiber_stack_reuses",
           static_cast<std::int64_t>(c.fiber_stack_reuses));
  cell.set("fiber_stack_allocs",
           static_cast<std::int64_t>(c.fiber_stack_allocs));
  cell.set("stepped_blocks_carved",
           static_cast<std::int64_t>(c.stepped_blocks_carved));
  cell.set("stepped_block_reuses",
           static_cast<std::int64_t>(c.stepped_block_reuses));
  cell.set("stepped_block_bytes",
           static_cast<std::int64_t>(c.stepped_block_bytes));
  cell.set("instance_blocks_carved",
           static_cast<std::int64_t>(c.instance_blocks_carved));
  cell.set("instance_block_reuses",
           static_cast<std::int64_t>(c.instance_block_reuses));
  cell.set("instance_block_bytes",
           static_cast<std::int64_t>(c.instance_block_bytes));
  return cell;
}

inline Json alloc_counter_cell() {
  return alloc_counter_cell(subc::alloc_counters());
}

/// Writes `json` to `path` (+ trailing newline), stamping the process-wide
/// allocation counters into an `alloc_counters` cell first so every
/// BENCH_<ID>.json carries the allocator telemetry without per-bench
/// plumbing. Returns false on IO error.
inline bool write_json(const std::string& path, const Json& json) {
  Json stamped = json;
  stamped.set("alloc_counters", alloc_counter_cell());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string body = stamped.str() + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

/// Worker threads for bench runs: $SUBC_BENCH_THREADS when set, otherwise
/// one per hardware thread.
inline int bench_threads() {
  if (const char* env = std::getenv("SUBC_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Monotonic wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace subc_bench
