// Experiment F4 — simulator micro-costs (google-benchmark).
//
// Establishes the throughput envelope of the substrate itself: fiber
// switches, kernel steps over base objects, the paper objects' operations,
// whole-algorithm runs and explorer execution rates (serial and parallel).
// These numbers bound how large the exhaustive experiments (T1, T5, T6)
// can be pushed. After the google-benchmark suite, the explorer rates are
// re-measured directly and written to BENCH_F4.json.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "subc/algorithms/snapshot_impl.hpp"
#include "subc/algorithms/stepped_bodies.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/fiber.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/stepper.hpp"

namespace {

using namespace subc;

/// One process hammering a register with writes as a stepped machine — the
/// stepped-engine twin of BM_RegisterStep's fiber body.
struct SteppedWriterBody {
  Register<>* reg;
  std::int64_t batch;

  std::int64_t i_ = 0;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    for (i_ = 0; i_ < batch; ++i_) {
      SUBC_STEP_POINT(ctx, reg->oid(), AccessKind::kWrite);
      reg->step_write(ctx, i_);
    }
    SUBC_STEP_END(ctx);
  }
};

/// Kernel-free switch-resume machine: measures the duff's-device dispatch
/// itself (the stepped engine's analogue of one fiber switch).
struct RawSteppedMachine {
  std::uint32_t resume = 0;
  std::int64_t count = 0;

  void step() {
    switch (resume) {
      case 0:;
        for (;;) {
          ++count;
          resume = 1;
          return;
          case 1:;
        }
    }
  }
};

void BM_FiberSwitch(benchmark::State& state) {
  Fiber fiber([] {
    for (;;) {
      Fiber::yield();
    }
  });
  for (auto _ : state) {
    fiber.resume();
  }
  fiber.kill();
}
BENCHMARK(BM_FiberSwitch);

void BM_SteppedResume(benchmark::State& state) {
  // Raw resume cost of the stepped engine's state machine — the number to
  // hold against BM_FiberSwitch.
  RawSteppedMachine machine;
  for (auto _ : state) {
    machine.step();
    // Escape the machine state each iteration, or the whole resume loop
    // constant-folds away (the dispatch is ~1 ns; the optimizer sees
    // straight through it).
    benchmark::DoNotOptimize(machine.resume);
  }
  benchmark::DoNotOptimize(machine.count);
}
BENCHMARK(BM_SteppedResume);

void BM_RegisterStep(benchmark::State& state) {
  // One simulated process hammering a register; measures kernel step cost
  // (schedule + fiber switch + op body).
  const std::int64_t batch = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt;
    Register<> reg(0);
    rt.add_process([&](Context& ctx) {
      for (std::int64_t i = 0; i < batch; ++i) {
        reg.write(ctx, i);
      }
    });
    RoundRobinDriver driver;
    state.ResumeTiming();
    rt.run(driver, batch + 10);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_RegisterStep);

void BM_SteppedRegisterStep(benchmark::State& state) {
  // BM_RegisterStep with the process hosted on the stepped engine: kernel
  // step cost with no stack switch, state block arena-carved.
  const std::int64_t batch = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt;
    Register<> reg(0);
    rt.add_stepped(SteppedWriterBody{&reg, batch});
    RoundRobinDriver driver;
    state.ResumeTiming();
    rt.run(driver, batch + 10);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SteppedRegisterStep);

void BM_WrnOperation(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::int64_t batch = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt;
    WrnObject wrn(k);
    rt.add_process([&](Context& ctx) {
      for (std::int64_t i = 0; i < batch; ++i) {
        wrn.wrn(ctx, static_cast<int>(i % k), i + 1);
      }
    });
    RoundRobinDriver driver;
    state.ResumeTiming();
    rt.run(driver, batch + 10);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WrnOperation)->Arg(3)->Arg(8)->Arg(32);

void BM_SnapshotScanFromRegisters(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  const std::int64_t batch = 50;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt;
    SnapshotFromRegisters<> snap(size, 0);
    rt.add_process([&](Context& ctx) {
      for (std::int64_t i = 0; i < batch; ++i) {
        benchmark::DoNotOptimize(snap.scan(ctx));
      }
    });
    RoundRobinDriver driver;
    state.ResumeTiming();
    rt.run(driver, batch * (2 * size + 4));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SnapshotScanFromRegisters)->Arg(4)->Arg(16);

void BM_Algorithm2FullRun(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(algorithm.propose(ctx, p, 100 + p));
      });
    }
    RandomDriver driver(seed++);
    rt.run(driver);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Algorithm2FullRun)->Arg(3)->Arg(8)->Arg(16);

ExecutionBody explorer_rate_body() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&](Context& ctx) {
        reg.read(ctx);
        reg.write(ctx, 1);
      });
    }
    rt.run(driver);
  };
}

void BM_ExplorerExecutionRate(benchmark::State& state) {
  // Executions per second of the stateless explorer on a 3-process world.
  // Arg(0) = worker threads (1 = the serial path).
  Explorer::Options opts;
  opts.max_executions = 2000;
  // Raw enumeration rate is the quantity under test: with reduction on the
  // tree shrinks and items-processed would no longer equal executions.
  opts.reduction = Reduction::kNone;
  opts.threads = static_cast<int>(state.range(0));
  const ExecutionBody body = explorer_rate_body();
  for (auto _ : state) {
    const auto result = Explorer::explore(body, opts);
    benchmark::DoNotOptimize(result.executions);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ExplorerExecutionRate)->Arg(1)->Arg(0);  // 0 = all hw threads

void BM_RandomSweepRate(benchmark::State& state) {
  // Arg(0) = worker threads as above.
  const int threads =
      static_cast<int>(state.range(0)) == 0
          ? Explorer::resolve_threads(0)
          : static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = RandomSweep::run(
        [](ScheduleDriver& driver) {
          Runtime rt;
          WrnSetConsensus algorithm(4);
          for (int p = 0; p < 4; ++p) {
            rt.add_process([&, p](Context& ctx) {
              ctx.decide(algorithm.propose(ctx, p, 10 + p));
            });
          }
          rt.run(driver);
        },
        200, 1, threads);
    benchmark::DoNotOptimize(result.runs);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_RandomSweepRate)->Arg(1)->Arg(0);

// Per-step micro cells for the JSON artifact: fiber switch vs raw stepped
// resume (the engines' suspension primitives), and the full kernel step on
// each engine (schedule + suspension + op body, stepped state arena-carved).
subc_bench::Json measure_per_step_ns() {
  double fiber_switch_ns = 0;
  {
    Fiber fiber([] {
      for (;;) {
        Fiber::yield();
      }
    });
    const std::int64_t n = 2'000'000;
    for (int i = 0; i < 1000; ++i) {
      fiber.resume();  // warm the stacks
    }
    const subc_bench::Stopwatch sw;
    for (std::int64_t i = 0; i < n; ++i) {
      fiber.resume();
    }
    fiber_switch_ns = sw.ms() * 1e6 / static_cast<double>(n);
    fiber.kill();
  }
  double stepped_resume_ns = 0;
  {
    RawSteppedMachine machine;
    const std::int64_t n = 50'000'000;
    const subc_bench::Stopwatch sw;
    for (std::int64_t i = 0; i < n; ++i) {
      machine.step();
      // As in BM_SteppedResume: without the per-iteration escape the
      // optimizer folds the whole loop to a constant.
      benchmark::DoNotOptimize(machine.resume);
    }
    stepped_resume_ns = sw.ms() * 1e6 / static_cast<double>(n);
    benchmark::DoNotOptimize(machine.count);
  }
  const auto kernel_step_ns = [](bool stepped) {
    const std::int64_t batch = 500'000;
    Runtime rt;
    Register<> reg(0);
    if (stepped) {
      rt.add_stepped(SteppedWriterBody{&reg, batch});
    } else {
      rt.add_process([&reg, batch](Context& ctx) {
        for (std::int64_t i = 0; i < batch; ++i) {
          reg.write(ctx, i);
        }
      });
    }
    RoundRobinDriver driver;
    const subc_bench::Stopwatch sw;
    rt.run(driver, batch + 10);
    return sw.ms() * 1e6 / static_cast<double>(batch);
  };
  const double fiber_kernel_ns = kernel_step_ns(false);
  const double stepped_kernel_ns = kernel_step_ns(true);
  subc_bench::Json cell;
  cell.set("fiber_switch", fiber_switch_ns)
      .set("stepped_resume", stepped_resume_ns)
      .set("fiber_kernel_step", fiber_kernel_ns)
      .set("stepped_kernel_step", stepped_kernel_ns)
      .set("kernel_step_speedup", stepped_kernel_ns > 0
                                      ? fiber_kernel_ns / stepped_kernel_ns
                                      : 0.0);
  return cell;
}

// Direct (non-google-benchmark) explorer rate measurement for the JSON
// artifact: one larger tree (3 procs × 4 reads), serial vs parallel, on
// each execution engine. `--perf-smoke` gates the two serial rates
// separately against scripts/perf_baseline/BENCH_F4.json.
void write_results_json() {
  const int threads = subc_bench::bench_threads();
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&](Context& ctx) {
        for (int s = 0; s < 4; ++s) {
          reg.read(ctx);
        }
      });
    }
    rt.run(driver);
  };
  const ExecutionBody stepped_body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < 3; ++p) {
      rt.add_stepped(SteppedRegisterReader{&reg, 4});
    }
    rt.run(driver);
  };
  Explorer::Options opts;
  opts.max_executions = 5'000'000;
  opts.reduction = Reduction::kNone;  // rate of the raw enumeration
  const subc_bench::Stopwatch serial_sw;
  const auto serial = Explorer::explore(body, opts);
  const double serial_ms = serial_sw.ms();
  const subc_bench::Stopwatch stepped_serial_sw;
  const auto stepped_serial = Explorer::explore(stepped_body, opts);
  const double stepped_serial_ms = stepped_serial_sw.ms();
  opts.threads = threads;
  const subc_bench::Stopwatch parallel_sw;
  const auto parallel = Explorer::explore(body, opts);
  const double parallel_ms = parallel_sw.ms();
  const subc_bench::Stopwatch stepped_parallel_sw;
  const auto stepped_parallel = Explorer::explore(stepped_body, opts);
  const double stepped_parallel_ms = stepped_parallel_sw.ms();
  // One reduced pass over the same tree for the reduction telemetry all
  // BENCH_<ID>.json files carry.
  Explorer::Options red = opts;
  red.threads = 1;
  red.reduction = Reduction::kSleepSets;
  const auto reduced = Explorer::explore(body, red);

  const double serial_rate =
      serial_ms > 0
          ? 1000.0 * static_cast<double>(serial.executions) / serial_ms
          : 0.0;
  const double stepped_serial_rate =
      stepped_serial_ms > 0
          ? 1000.0 * static_cast<double>(stepped_serial.executions) /
                stepped_serial_ms
          : 0.0;
  subc_bench::Json out;
  out.set("bench", "F4")
      .set("threads", threads)
      .set("executions", serial.executions)
      .set("executions_reduced", reduced.executions)
      .set("counts_match", parallel.executions == serial.executions &&
                               stepped_serial.executions ==
                                   serial.executions &&
                               stepped_parallel.executions ==
                                   serial.executions)
      .set("serial_ms", serial_ms)
      .set("parallel_ms", parallel_ms)
      .set("serial_executions_per_sec", serial_rate)
      .set("parallel_executions_per_sec",
           parallel_ms > 0
               ? 1000.0 * static_cast<double>(parallel.executions) /
                     parallel_ms
               : 0.0)
      .set("speedup", parallel_ms > 0 ? serial_ms / parallel_ms : 0.0)
      .set("stepped_serial_ms", stepped_serial_ms)
      .set("stepped_parallel_ms", stepped_parallel_ms)
      .set("stepped_serial_executions_per_sec", stepped_serial_rate)
      .set("stepped_parallel_executions_per_sec",
           stepped_parallel_ms > 0
               ? 1000.0 *
                     static_cast<double>(stepped_parallel.executions) /
                     stepped_parallel_ms
               : 0.0)
      .set("stepped_speedup_vs_fiber",
           serial_rate > 0 ? stepped_serial_rate / serial_rate : 0.0)
      .set("per_step_ns", measure_per_step_ns());
  subc_bench::set_reduction_fields(out, reduced.reduced_subtrees,
                                   reduced.executions);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_F4.json", out);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  write_results_json();
  return 0;
}
