// Experiment T1 — Algorithm 2: (k,k−1)-set consensus from WRN_k.
//
// The papers are theory papers with no measured tables; T1 regenerates the
// *claims table* for Algorithm 2 (Claims 3–9): for each k, drive the
// algorithm over every schedule (exhaustive where feasible, seeded-random
// beyond), and report the number of executions, the worst-case number of
// distinct decisions observed (must equal k−1: the bound and its
// tightness), validity violations (must be 0) and non-terminating runs
// (must be 0 — wait-freedom).
#include <algorithm>
#include <cstdio>

#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

struct Row {
  int k = 0;
  const char* mode = "";
  std::int64_t executions = 0;
  int worst_distinct = 0;
  std::int64_t violations = 0;
};

Row run_for_k(int k) {
  Row row;
  row.k = k;
  std::vector<Value> inputs;
  for (int p = 0; p < k; ++p) {
    inputs.push_back(100 + p);
  }
  int worst = 0;
  const ExecutionBody body = [&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, k - 1);
    worst = std::max(worst, distinct_decisions(run.decisions));
  };
  if (k <= 7) {
    const auto result = Explorer::explore(body);
    row.mode = "exhaustive";
    row.executions = result.executions;
    row.violations = result.ok() ? 0 : 1;
  } else {
    const auto result = RandomSweep::run(body, 20'000);
    row.mode = "random";
    row.executions = result.runs;
    row.violations = result.ok() ? 0 : 1;
    // Random schedules rarely realize the tightness witness for large k
    // (ascending pid order has probability 1/k!), so drive it explicitly:
    // P_0 < P_1 < ... < P_{k-1} makes everyone but the last decide its own
    // value — exactly k−1 distinct decisions (Corollary 8 is tight).
    RoundRobinDriver witness;
    body(witness);
    ++row.executions;
  }
  row.worst_distinct = worst;
  return row;
}

}  // namespace

int main() {
  std::printf("T1: Algorithm 2 — (k,k-1)-set consensus from WRN_k\n");
  std::printf("claims: wait-free (Claim 3), validity (Claim 6), "
              "(k-1)-agreement (Cor 8), tight\n\n");
  std::printf("%4s  %-11s %12s  %16s  %10s  %s\n", "k", "mode", "executions",
              "worst-distinct", "expected", "violations");
  bool all_ok = true;
  for (const int k : {3, 4, 5, 6, 7, 8, 10, 12}) {
    const Row row = run_for_k(k);
    std::printf("%4d  %-11s %12lld  %16d  %10d  %lld\n", row.k, row.mode,
                static_cast<long long>(row.executions), row.worst_distinct,
                row.k - 1, static_cast<long long>(row.violations));
    all_ok = all_ok && row.violations == 0 && row.worst_distinct == row.k - 1;
  }
  std::printf("\nT1 %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
