// Experiment T1 — Algorithm 2: (k,k−1)-set consensus from WRN_k.
//
// The papers are theory papers with no measured tables; T1 regenerates the
// *claims table* for Algorithm 2 (Claims 3–9): for each k, drive the
// algorithm over every schedule (exhaustive where feasible, seeded-random
// beyond), and report the number of executions, the worst-case number of
// distinct decisions observed (must equal k−1: the bound and its
// tightness), validity violations (must be 0) and non-terminating runs
// (must be 0 — wait-freedom). Exhaustive rows run on the parallel
// work-sharing explorer; results also land in BENCH_T1.json.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

struct Row {
  int k = 0;
  const char* mode = "";
  std::int64_t executions = 0;
  std::int64_t reduced_subtrees = 0;
  int worst_distinct = 0;
  std::int64_t violations = 0;
  double ms = 0;
};

Row run_for_k(int k, int threads) {
  Row row;
  row.k = k;
  std::vector<Value> inputs;
  for (int p = 0; p < k; ++p) {
    inputs.push_back(100 + p);
  }
  // `worst` is shared across worker threads; everything else in the body is
  // per-execution local.
  std::mutex mu;
  int worst = 0;
  const ExecutionBody body = [&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, k - 1);
    const int distinct = distinct_decisions(run.decisions);
    const std::lock_guard<std::mutex> lock(mu);
    worst = std::max(worst, distinct);
  };
  const subc_bench::Stopwatch sw;
  if (k <= 7) {
    Explorer::Options opts;
    opts.threads = threads;
    const auto result = Explorer::explore(body, opts);
    row.mode = "exhaustive";
    row.executions = result.executions;
    row.reduced_subtrees = result.reduced_subtrees;
    row.violations = result.ok() ? 0 : 1;
  } else {
    const auto result = RandomSweep::run(body, 20'000, 1, threads);
    row.mode = "random";
    row.executions = result.runs;
    row.violations = result.ok() ? 0 : 1;
    // Random schedules rarely realize the tightness witness for large k
    // (ascending pid order has probability 1/k!), so drive it explicitly:
    // P_0 < P_1 < ... < P_{k-1} makes everyone but the last decide its own
    // value — exactly k−1 distinct decisions (Corollary 8 is tight).
    RoundRobinDriver witness;
    body(witness);
    ++row.executions;
  }
  row.ms = sw.ms();
  row.worst_distinct = worst;
  return row;
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("T1: Algorithm 2 — (k,k-1)-set consensus from WRN_k "
              "(%d threads)\n", threads);
  std::printf("claims: wait-free (Claim 3), validity (Claim 6), "
              "(k-1)-agreement (Cor 8), tight\n\n");
  std::printf("%4s  %-11s %12s  %16s  %10s  %10s  %s\n", "k", "mode",
              "executions", "worst-distinct", "expected", "exec/sec",
              "violations");
  bool all_ok = true;
  std::vector<subc_bench::Json> rows;
  std::int64_t total_executions = 0;
  std::int64_t total_reduced = 0;
  for (const int k : {3, 4, 5, 6, 7, 8, 10, 12}) {
    const Row row = run_for_k(k, threads);
    total_executions += row.executions;
    total_reduced += row.reduced_subtrees;
    const double per_sec =
        row.ms > 0 ? 1000.0 * static_cast<double>(row.executions) / row.ms : 0;
    std::printf("%4d  %-11s %12lld  %16d  %10d  %10.0f  %lld\n", row.k,
                row.mode, static_cast<long long>(row.executions),
                row.worst_distinct, row.k - 1, per_sec,
                static_cast<long long>(row.violations));
    all_ok = all_ok && row.violations == 0 && row.worst_distinct == row.k - 1;
    subc_bench::Json json_row;
    json_row.set("k", row.k)
        .set("mode", row.mode)
        .set("executions", row.executions)
        .set("reduced_subtrees", row.reduced_subtrees)
        .set("worst_distinct", row.worst_distinct)
        .set("violations", row.violations)
        .set("ms", row.ms)
        .set("executions_per_sec", per_sec);
    rows.push_back(json_row);
  }
  subc_bench::Json out;
  out.set("bench", "T1").set("threads", threads).set("rows", rows).set(
      "pass", all_ok);
  subc_bench::set_reduction_fields(out, total_reduced, total_executions);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T1.json", out);
  std::printf("\nT1 %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
