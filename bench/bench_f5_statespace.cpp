// Experiment F5 — state-space growth, parallel explorer speedup, and
// checker scaling.
//
// Series 1: exhaustive-explorer execution counts versus processes × steps
// (the multinomial schedule-tree sizes), measured against the closed form —
// calibrates what "exhaustive" can mean for T1/T5/T6. Each cell is explored
// twice: serially and with the work-sharing parallel explorer; the counts
// must agree bit-for-bit and the wall-clock ratio is the measured speedup.
// Series 2: Wing–Gong checker time versus history length for maximally
// concurrent 1sWRN histories (everything overlaps everything).
//
// Results are also written to BENCH_F5.json (per-cell executions, serial and
// parallel times, executions/sec, speedup, thread count).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace {

using namespace subc;

ExecutionBody grid_body(int procs, int steps) {
  return [procs, steps](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < procs; ++p) {
      rt.add_process([&](Context& ctx) {
        for (int s = 0; s < steps; ++s) {
          reg.read(ctx);
        }
      });
    }
    rt.run(driver);
  };
}

struct CellResult {
  long long executions = 0;
  bool complete = false;
  bool counts_match = false;
  double serial_ms = 0;
  double parallel_ms = 0;
};

CellResult run_cell(int procs, int steps, int threads) {
  const ExecutionBody body = grid_body(procs, steps);
  Explorer::Options opts;
  opts.max_executions = 5'000'000;
  CellResult cell;
  {
    const subc_bench::Stopwatch sw;
    const auto serial = Explorer::explore(body, opts);
    cell.serial_ms = sw.ms();
    cell.executions = serial.executions;
    cell.complete = serial.complete;
  }
  {
    Explorer::Options popts = opts;
    popts.threads = threads;
    const subc_bench::Stopwatch sw;
    const auto parallel = Explorer::explore(body, popts);
    cell.parallel_ms = sw.ms();
    cell.counts_match = parallel.executions == cell.executions &&
                        parallel.complete == cell.complete;
  }
  return cell;
}

double time_checker(int k) {
  // Build a maximally-overlapping completed history: all invocations open,
  // then all responses, values consistent with some linearization.
  History history;
  std::vector<std::size_t> handles;
  for (int i = 0; i < k; ++i) {
    handles.push_back(
        history.invoke(i, {static_cast<Value>(i), static_cast<Value>(100 + i)}));
  }
  // Responses as if linearized in index order: op i returns ⊥ except the
  // last, which sees slot 0.
  for (int i = 0; i < k; ++i) {
    const Value response = (i == k - 1) ? 100 : kBottom;
    history.respond(handles[static_cast<std::size_t>(i)], {response});
  }
  const auto start = std::chrono::steady_clock::now();
  const auto result = check_linearizable(OneShotWrnSpec{k}, history.entries());
  const auto stop = std::chrono::steady_clock::now();
  if (!result.linearizable) {
    return -1;
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("F5: explorer state-space growth and checker scaling\n\n");
  std::printf("series 1: exhaustive executions vs (processes, steps/proc), "
              "serial vs %d-thread parallel\n", threads);
  std::printf("%6s %6s %14s %12s %12s %9s %6s\n", "procs", "steps",
              "executions", "serial(ms)", "par(ms)", "speedup", "match");
  struct Cell {
    int procs;
    int steps;
  };
  const Cell cells[] = {{2, 2}, {2, 4}, {2, 6}, {3, 2}, {3, 3},
                        {3, 4}, {4, 2}, {4, 3}, {5, 2}};
  // Warm-up: the first exploration in a process is several times slower than
  // steady state (fiber-stack page faults, allocator growth); run one
  // untimed pass through both paths so the timed cells compare fairly.
  run_cell(3, 3, threads);
  bool ok = true;
  std::vector<subc_bench::Json> series1;
  double serial_total_ms = 0;
  double parallel_total_ms = 0;
  long long total_executions = 0;
  for (const auto& [procs, steps] : cells) {
    const CellResult cell = run_cell(procs, steps, threads);
    ok = ok && cell.counts_match;
    const double speedup =
        cell.parallel_ms > 0 ? cell.serial_ms / cell.parallel_ms : 0;
    serial_total_ms += cell.serial_ms;
    parallel_total_ms += cell.parallel_ms;
    total_executions += cell.executions;
    std::printf("%6d %6d %14lld%s %11.1f %11.1f %8.2fx %6s\n", procs, steps,
                cell.executions, cell.complete ? "" : " (truncated)",
                cell.serial_ms, cell.parallel_ms, speedup,
                cell.counts_match ? "yes" : "NO");
    subc_bench::Json row;
    row.set("procs", procs)
        .set("steps", steps)
        .set("executions", cell.executions)
        .set("complete", cell.complete)
        .set("counts_match", cell.counts_match)
        .set("serial_ms", cell.serial_ms)
        .set("parallel_ms", cell.parallel_ms)
        .set("speedup", speedup)
        .set("parallel_executions_per_sec",
             cell.parallel_ms > 0
                 ? 1000.0 * static_cast<double>(cell.executions) /
                       cell.parallel_ms
                 : 0.0);
    series1.push_back(row);
  }
  const double overall_speedup =
      parallel_total_ms > 0 ? serial_total_ms / parallel_total_ms : 0;
  std::printf("\nseries 1 overall: %.1f ms serial, %.1f ms parallel, "
              "%.2fx speedup at %d threads\n", serial_total_ms,
              parallel_total_ms, overall_speedup, threads);

  std::printf("\nseries 2: Wing–Gong checker on maximally concurrent "
              "1sWRN_k histories\n");
  std::printf("%6s %14s\n", "k", "time (ms)");
  std::vector<subc_bench::Json> series2;
  for (const int k : {4, 8, 12, 16, 20}) {
    const double ms = time_checker(k);
    if (ms < 0) {
      ok = false;
      std::printf("%6d %14s\n", k, "NOT LINEARIZABLE?!");
    } else {
      std::printf("%6d %14.3f\n", k, ms);
    }
    subc_bench::Json row;
    row.set("k", k).set("checker_ms", ms).set("linearizable", ms >= 0);
    series2.push_back(row);
  }
  std::printf(
      "\nreading: schedule counts follow the multinomial "
      "(Σsteps)!/Π(steps!);\nthe checker's memoized DFS stays polynomial-ish "
      "on WRN histories because\nstate keys collapse equivalent "
      "linearization prefixes.\n");

  subc_bench::Json out;
  out.set("bench", "F5")
      .set("threads", threads)
      .set("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()))
      .set("serial_total_ms", serial_total_ms)
      .set("parallel_total_ms", parallel_total_ms)
      .set("speedup", overall_speedup)
      .set("total_executions", total_executions)
      .set("parallel_executions_per_sec",
           parallel_total_ms > 0
               ? 1000.0 * static_cast<double>(total_executions) /
                     parallel_total_ms
               : 0.0)
      .set("series1", series1)
      .set("series2", series2)
      .set("pass", ok);
  subc_bench::write_json("BENCH_F5.json", out);

  std::printf("\nF5 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
