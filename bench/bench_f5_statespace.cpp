// Experiment F5 — state-space growth, partial-order reduction, parallel
// explorer speedup, and checker scaling.
//
// Series 1: exhaustive-explorer execution counts versus processes × steps,
// with the sleep-set reduction off and on — calibrates what "exhaustive"
// can mean for T1/T5/T6 and measures how much of the multinomial schedule
// tree the footprint-based reduction proves redundant. Two world families:
//   reads — every step reads one shared register (fully commuting: the
//           degenerate best case, the tree collapses to ~1 execution);
//   mixed — each process alternates a write to its own register (commutes
//           with everything) and a write to one shared register (conflicts
//           with every other process): the realistic partial-conflict case.
// Each cell is explored three ways: unreduced serial, reduced serial, and
// reduced parallel; the two reduced runs must agree bit-for-bit (executions
// and reduced_subtrees), all three must reach the same verdict, and the
// per-cell reduction factor (unreduced/reduced executions) and speedups are
// reported.
// Series 2: Wing–Gong checker time versus history length for maximally
// concurrent 1sWRN histories (everything overlaps everything).
// Series 3: stateful exploration — the same grid machinery at
// {none, sleep, sleep+stateful} × threads {1, 4}; on convergent (mixed)
// worlds the visited set must beat sleep-sets-alone by >= 5x executions on
// at least one cell, and the serial stateful counts must be engine-identical
// (fiber vs stepped).
//
// Results are also written to BENCH_F5.json (per-cell execution counts for
// both reduction settings, reduction factor, serial and parallel times,
// speedups, thread count).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <thread>

#include "bench_util.hpp"
#include "subc/algorithms/stepped_bodies.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace {

using namespace subc;

enum class World { kReads, kMixed };

const char* world_name(World w) {
  return w == World::kReads ? "reads" : "mixed";
}

ExecutionBody grid_body(World world, int procs, int steps) {
  if (world == World::kReads) {
    return [procs, steps](ScheduleDriver& driver) {
      Runtime rt;
      Register<> reg(0);
      for (int p = 0; p < procs; ++p) {
        rt.add_process([&](Context& ctx) {
          for (int s = 0; s < steps; ++s) {
            reg.read(ctx);
          }
        });
      }
      rt.run(driver);
    };
  }
  return [procs, steps](ScheduleDriver& driver) {
    Runtime rt;
    Register<> shared(0);
    RegisterArray<> own(procs, 0);
    for (int p = 0; p < procs; ++p) {
      rt.add_process([&, p](Context& ctx) {
        for (int s = 0; s < steps; ++s) {
          if (s % 2 == 0) {
            own[p].write(ctx, s);
          } else {
            shared.write(ctx, p);
          }
        }
      });
    }
    rt.run(driver);
  };
}

// `grid_body` with every process hosted on the stepped engine
// (runtime/stepper.hpp): identical footprints in identical order, so the
// explorer must enumerate exactly the same tree — only the per-step
// suspension mechanism (switch-resume vs stack switch) differs.
ExecutionBody stepped_grid_body(World world, int procs, int steps) {
  if (world == World::kReads) {
    return [procs, steps](ScheduleDriver& driver) {
      Runtime rt;
      Register<> reg(0);
      for (int p = 0; p < procs; ++p) {
        rt.add_stepped(SteppedRegisterReader{&reg, steps});
      }
      rt.run(driver);
    };
  }
  return [procs, steps](ScheduleDriver& driver) {
    Runtime rt;
    Register<> shared(0);
    RegisterArray<> own(procs, 0);
    for (int p = 0; p < procs; ++p) {
      rt.add_stepped(SteppedMixedWriter{&own[p], &shared, p, steps});
    }
    rt.run(driver);
  };
}

struct CellResult {
  long long executions_unreduced = 0;
  long long executions_reduced = 0;
  long long reduced_subtrees = 0;
  bool complete = false;
  bool counts_match = false;   // reduced serial == reduced parallel
  bool verdict_match = false;  // all three runs: same ok() and complete
  double unreduced_ms = 0;
  double reduced_ms = 0;
  double parallel_ms = 0;
};

CellResult run_cell(World world, int procs, int steps, int threads) {
  const ExecutionBody body = grid_body(world, procs, steps);
  Explorer::Options opts;
  opts.max_executions = 5'000'000;
  CellResult cell;
  bool ok_unreduced = false;
  bool ok_reduced = false;
  bool ok_parallel = false;
  bool complete_reduced = false;
  bool complete_parallel = false;
  {
    Explorer::Options raw = opts;
    raw.reduction = Reduction::kNone;
    const subc_bench::Stopwatch sw;
    const auto unreduced = Explorer::explore(body, raw);
    cell.unreduced_ms = sw.ms();
    cell.executions_unreduced = unreduced.executions;
    cell.complete = unreduced.complete;
    ok_unreduced = unreduced.ok();
  }
  {
    const subc_bench::Stopwatch sw;
    const auto reduced = Explorer::explore(body, opts);
    cell.reduced_ms = sw.ms();
    cell.executions_reduced = reduced.executions;
    cell.reduced_subtrees = reduced.reduced_subtrees;
    ok_reduced = reduced.ok();
    complete_reduced = reduced.complete;
  }
  {
    Explorer::Options popts = opts;
    popts.threads = threads;
    const subc_bench::Stopwatch sw;
    const auto parallel = Explorer::explore(body, popts);
    cell.parallel_ms = sw.ms();
    cell.counts_match = parallel.executions == cell.executions_reduced &&
                        parallel.reduced_subtrees == cell.reduced_subtrees;
    ok_parallel = parallel.ok();
    complete_parallel = parallel.complete;
  }
  cell.verdict_match = ok_unreduced == ok_reduced &&
                       ok_reduced == ok_parallel &&
                       cell.complete == complete_reduced &&
                       complete_reduced == complete_parallel;
  return cell;
}

// One grid point explored at {none, sleep, sleep+stateful} × threads {1, 4}.
// The stateless modes must agree bit-for-bit across thread counts; the
// stateful mode is deterministic serially (and engine-identical — checked
// against the stepped twin below) while its parallel run must only agree on
// the verdict: the cut/execution split may vary with worker timing.
struct StatefulCell {
  long long execs_none = 0;
  long long execs_sleep = 0;
  long long execs_stateful = 0;
  long long stateful_cuts = 0;
  long long stateful_states = 0;
  double none_ms = 0;
  double sleep_ms = 0;
  double stateful_ms = 0;
  bool ok = false;  // verdicts + completeness agree across all six runs
};

StatefulCell run_stateful_cell(World world, int procs, int steps,
                               std::int64_t capacity) {
  const ExecutionBody body = grid_body(world, procs, steps);
  StatefulCell cell;
  Explorer::Options base;
  base.max_executions = 5'000'000;
  bool agree = true;
  bool have_first = false;
  bool ok0 = false;
  bool complete0 = false;
  const auto fold = [&](const Explorer::Result& r) {
    if (!have_first) {
      ok0 = r.ok();
      complete0 = r.complete;
      have_first = true;
    }
    agree = agree && r.ok() == ok0 && r.complete == complete0;
  };
  {
    Explorer::Options o = base;
    o.reduction = Reduction::kNone;
    const subc_bench::Stopwatch sw;
    const auto serial = Explorer::explore(body, o);
    cell.none_ms = sw.ms();
    cell.execs_none = serial.executions;
    fold(serial);
    o.threads = 4;
    const auto par = Explorer::explore(body, o);
    fold(par);
    agree = agree && par.executions == serial.executions;
  }
  {
    Explorer::Options o = base;
    const subc_bench::Stopwatch sw;
    const auto serial = Explorer::explore(body, o);
    cell.sleep_ms = sw.ms();
    cell.execs_sleep = serial.executions;
    fold(serial);
    o.threads = 4;
    const auto par = Explorer::explore(body, o);
    fold(par);
    agree = agree && par.executions == serial.executions;
  }
  {
    Explorer::Options o = base;
    o.stateful = true;
    o.stateful_capacity = capacity;
    const subc_bench::Stopwatch sw;
    const auto serial = Explorer::explore(body, o);
    cell.stateful_ms = sw.ms();
    cell.execs_stateful = serial.executions;
    cell.stateful_cuts = serial.stateful_cuts;
    cell.stateful_states = serial.stateful_states;
    fold(serial);
    o.threads = 4;
    const auto par = Explorer::explore(body, o);
    fold(par);  // counts may differ under parallel stateful; verdict must not
  }
  cell.ok = agree;
  return cell;
}

double time_checker(int k) {
  // Build a maximally-overlapping completed history: all invocations open,
  // then all responses, values consistent with some linearization.
  History history;
  std::vector<std::size_t> handles;
  for (int i = 0; i < k; ++i) {
    handles.push_back(
        history.invoke(i, {static_cast<Value>(i), static_cast<Value>(100 + i)}));
  }
  // Responses as if linearized in index order: op i returns ⊥ except the
  // last, which sees slot 0.
  for (int i = 0; i < k; ++i) {
    const Value response = (i == k - 1) ? 100 : kBottom;
    history.respond(handles[static_cast<std::size_t>(i)], {response});
  }
  const auto start = std::chrono::steady_clock::now();
  const auto result = check_linearizable(OneShotWrnSpec{k}, history.entries());
  const auto stop = std::chrono::steady_clock::now();
  if (!result.linearizable) {
    return -1;
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("F5: explorer state-space growth, reduction, checker scaling\n\n");
  std::printf("series 1: exhaustive executions vs (world, processes, "
              "steps/proc), reduction off vs on, %d-thread parallel\n",
              threads);
  std::printf("%6s %6s %6s %12s %12s %8s %9s %9s %9s %6s\n", "world", "procs",
              "steps", "raw execs", "red execs", "factor", "raw(ms)",
              "red(ms)", "par(ms)", "ok");
  struct Cell {
    World world;
    int procs;
    int steps;
  };
  const Cell cells[] = {
      {World::kReads, 2, 2}, {World::kReads, 2, 4}, {World::kReads, 2, 6},
      {World::kReads, 3, 2}, {World::kReads, 3, 3}, {World::kReads, 3, 4},
      {World::kReads, 4, 2}, {World::kReads, 4, 3}, {World::kReads, 5, 2},
      {World::kMixed, 2, 4}, {World::kMixed, 2, 6}, {World::kMixed, 3, 2},
      {World::kMixed, 3, 3}, {World::kMixed, 3, 4}, {World::kMixed, 4, 2},
      {World::kMixed, 4, 3}};
  // Warm-up: the first exploration in a process is several times slower than
  // steady state (fiber-stack page faults, allocator growth); run one
  // untimed pass through all paths so the timed cells compare fairly.
  run_cell(World::kMixed, 3, 3, threads);
  bool ok = true;
  std::vector<subc_bench::Json> series1;
  double unreduced_total_ms = 0;
  double reduced_total_ms = 0;
  double parallel_total_ms = 0;
  long long total_executions_unreduced = 0;
  long long total_executions_reduced = 0;
  long long total_reduced_subtrees = 0;
  int cells_at_2x = 0;
  for (const auto& [world, procs, steps] : cells) {
    const CellResult cell = run_cell(world, procs, steps, threads);
    ok = ok && cell.counts_match && cell.verdict_match;
    const double factor =
        cell.executions_reduced > 0
            ? static_cast<double>(cell.executions_unreduced) /
                  static_cast<double>(cell.executions_reduced)
            : 0;
    if (factor >= 2.0) {
      ++cells_at_2x;
    }
    const double reduction_speedup =
        cell.reduced_ms > 0 ? cell.unreduced_ms / cell.reduced_ms : 0;
    const double parallel_speedup =
        cell.parallel_ms > 0 ? cell.reduced_ms / cell.parallel_ms : 0;
    unreduced_total_ms += cell.unreduced_ms;
    reduced_total_ms += cell.reduced_ms;
    parallel_total_ms += cell.parallel_ms;
    total_executions_unreduced += cell.executions_unreduced;
    total_executions_reduced += cell.executions_reduced;
    total_reduced_subtrees += cell.reduced_subtrees;
    std::printf("%6s %6d %6d %12lld %12lld %7.1fx %9.1f %9.1f %9.1f %6s\n",
                world_name(world), procs, steps, cell.executions_unreduced,
                cell.executions_reduced, factor, cell.unreduced_ms,
                cell.reduced_ms, cell.parallel_ms,
                cell.counts_match && cell.verdict_match ? "yes" : "NO");
    subc_bench::Json row;
    row.set("world", world_name(world))
        .set("procs", procs)
        .set("steps", steps)
        .set("executions_unreduced", cell.executions_unreduced)
        .set("executions_reduced", cell.executions_reduced)
        .set("reduced_subtrees", cell.reduced_subtrees)
        .set("reduction_factor", factor)
        .set("complete", cell.complete)
        .set("counts_match", cell.counts_match)
        .set("verdict_match", cell.verdict_match)
        .set("unreduced_ms", cell.unreduced_ms)
        .set("reduced_ms", cell.reduced_ms)
        .set("parallel_ms", cell.parallel_ms)
        .set("reduction_speedup", reduction_speedup)
        .set("parallel_speedup", parallel_speedup);
    series1.push_back(row);
  }
  // The reduction must pay for itself on register-heavy worlds: at least
  // half the cells shrink the explored tree by 2x or more.
  const int total_cells = static_cast<int>(std::size(cells));
  const bool reduction_effective = 2 * cells_at_2x >= total_cells;
  ok = ok && reduction_effective;
  const double overall_factor =
      total_executions_reduced > 0
          ? static_cast<double>(total_executions_unreduced) /
                static_cast<double>(total_executions_reduced)
          : 0;
  const double overall_reduction_speedup =
      reduced_total_ms > 0 ? unreduced_total_ms / reduced_total_ms : 0;
  const double overall_parallel_speedup =
      parallel_total_ms > 0 ? reduced_total_ms / parallel_total_ms : 0;
  std::printf("\nseries 1 overall: %lld raw vs %lld reduced executions "
              "(%.1fx, >=2x on %d/%d cells), %.1f ms raw, %.1f ms reduced "
              "(%.2fx), %.1f ms parallel (%.2fx at %d threads)\n",
              total_executions_unreduced, total_executions_reduced,
              overall_factor, cells_at_2x, total_cells, unreduced_total_ms,
              reduced_total_ms, overall_reduction_speedup, parallel_total_ms,
              overall_parallel_speedup, threads);

  std::printf("\nseries 2: Wing–Gong checker on maximally concurrent "
              "1sWRN_k histories\n");
  std::printf("%6s %14s\n", "k", "time (ms)");
  std::vector<subc_bench::Json> series2;
  for (const int k : {4, 8, 12, 16, 20}) {
    const double ms = time_checker(k);
    if (ms < 0) {
      ok = false;
      std::printf("%6d %14s\n", k, "NOT LINEARIZABLE?!");
    } else {
      std::printf("%6d %14.3f\n", k, ms);
    }
    subc_bench::Json row;
    row.set("k", k).set("checker_ms", ms).set("linearizable", ms >= 0);
    series2.push_back(row);
  }
  std::printf(
      "\nreading: raw schedule counts follow the multinomial "
      "(Σsteps)!/Π(steps!);\nsleep sets keep one representative per "
      "Mazurkiewicz trace, so fully\ncommuting worlds collapse to ~1 "
      "execution and mixed worlds shrink by the\nshare of commuting "
      "adjacent steps. The checker's memoized DFS stays\npolynomial-ish on "
      "WRN histories because state keys collapse equivalent\nlinearization "
      "prefixes.\n");

  // Headline throughput cell — the acceptance number the perf trajectory
  // tracks across PRs: the unreduced serial "reads, 4 procs × 3 steps" grid
  // point re-measured in isolation, with a ProgressTicker attached (huge
  // period: snapshot telemetry only, no stderr lines) so the observer-side
  // rate lands in the artifact alongside the stopwatch one.
  const ExecutionBody headline_body = grid_body(World::kReads, 4, 3);
  Explorer::Options hopts;
  hopts.max_executions = 5'000'000;
  hopts.reduction = Reduction::kNone;
  ProgressTicker ticker(/*period_seconds=*/1e9);
  hopts.observer = &ticker;
  const subc_bench::Stopwatch headline_sw;
  const auto headline = Explorer::explore(headline_body, hopts);
  const double headline_ms = headline_sw.ms();
  const auto ticker_snap = ticker.snapshot();
  // Measured on this cell immediately before the allocation-free-hot-path
  // overhaul landed; kept so the artifact records the before/after pair.
  const double pre_overhaul_rate = 110310.0;
  subc_bench::Json headline_cell;
  headline_cell.set("world", "reads").set("procs", 4).set("steps", 3);
  subc_bench::set_rate_fields(headline_cell, headline.executions,
                              headline_ms);
  const double headline_rate =
      headline_ms > 0
          ? 1000.0 * static_cast<double>(headline.executions) / headline_ms
          : 0.0;
  headline_cell.set("executions_per_sec_pre_overhaul", pre_overhaul_rate)
      .set("speedup_vs_pre_overhaul", headline_rate / pre_overhaul_rate)
      .set("ticker_executions_per_sec", ticker_snap.executions_per_sec)
      .set("ticker_reduction_factor", ticker_snap.reduction_factor)
      .set("ticker_violations", ticker_snap.violations);
  ok = ok && headline.complete && ticker_snap.executions == headline.executions;
  std::printf("\nheadline cell (reads, 4 procs x 3 steps, unreduced serial): "
              "%lld executions in %.1f ms = %.0f exec/s (pre-overhaul "
              "%.0f exec/s, %.2fx)\n",
              static_cast<long long>(headline.executions), headline_ms,
              headline_rate,
              pre_overhaul_rate, headline_rate / pre_overhaul_rate);

  // The same headline grid point on the stepped execution engine: no stack
  // switches, state blocks arena-carved. The execution count must match the
  // fiber cell exactly (same tree, different suspension mechanism); the
  // rate is the PR-over-PR acceptance number for the engine work.
  const ExecutionBody stepped_headline_body =
      stepped_grid_body(World::kReads, 4, 3);
  Explorer::explore(stepped_headline_body, hopts);  // untimed warm-up
  const subc_bench::Stopwatch stepped_headline_sw;
  const auto stepped_headline = Explorer::explore(stepped_headline_body, hopts);
  const double stepped_headline_ms = stepped_headline_sw.ms();
  const double stepped_headline_rate =
      stepped_headline_ms > 0
          ? 1000.0 * static_cast<double>(stepped_headline.executions) /
                stepped_headline_ms
          : 0.0;
  subc_bench::Json stepped_cell;
  stepped_cell.set("world", "reads")
      .set("procs", 4)
      .set("steps", 3)
      .set("engine", "stepped");
  subc_bench::set_rate_fields(stepped_cell, stepped_headline.executions,
                              stepped_headline_ms);
  stepped_cell
      .set("executions_match_fiber",
           stepped_headline.executions == headline.executions)
      .set("speedup_vs_fiber",
           headline_rate > 0 ? stepped_headline_rate / headline_rate : 0.0)
      .set("executions_per_sec_pre_overhaul", pre_overhaul_rate)
      .set("speedup_vs_pre_overhaul",
           stepped_headline_rate / pre_overhaul_rate);
  ok = ok && stepped_headline.complete &&
       stepped_headline.executions == headline.executions;
  std::printf("stepped headline cell (same grid point, stepped engine): "
              "%lld executions in %.1f ms = %.0f exec/s (%.2fx vs fiber, "
              "executions match: %s)\n",
              static_cast<long long>(stepped_headline.executions),
              stepped_headline_ms, stepped_headline_rate,
              headline_rate > 0 ? stepped_headline_rate / headline_rate : 0.0,
              stepped_headline.executions == headline.executions ? "yes"
                                                                 : "NO");

  // Crash-exploration cell: the mixed 3x2 grid point re-explored with crash
  // branching (f = 1) and a generous step-quota watchdog, serial vs
  // parallel. The crashed-branch tally must be bit-identical across thread
  // counts — same canonical-aggregation guarantee the plain counts carry.
  Explorer::Options crash_opts;
  crash_opts.max_executions = 5'000'000;
  crash_opts.max_crashes = 1;
  crash_opts.step_quota = 100'000;
  const ExecutionBody crash_body = grid_body(World::kMixed, 3, 2);
  const subc_bench::Stopwatch crash_sw;
  const auto crash_serial = Explorer::explore(crash_body, crash_opts);
  const double crash_ms = crash_sw.ms();
  Explorer::Options crash_popts = crash_opts;
  crash_popts.threads = threads;
  const auto crash_parallel = Explorer::explore(crash_body, crash_popts);
  const bool crash_match =
      crash_serial.executions == crash_parallel.executions &&
      crash_serial.crashed_executions == crash_parallel.crashed_executions &&
      crash_serial.stuck_executions == crash_parallel.stuck_executions;
  ok = ok && crash_serial.ok() && crash_serial.complete && crash_match &&
       crash_serial.crashed_executions > 0 &&
       crash_serial.stuck_executions == 0;
  std::printf("\ncrash exploration cell (mixed, 3 procs x 2 steps, f=1): "
              "%lld executions (%lld with a crash landed, %lld stuck) in "
              "%.1f ms, serial==parallel: %s\n",
              static_cast<long long>(crash_serial.executions),
              static_cast<long long>(crash_serial.crashed_executions),
              static_cast<long long>(crash_serial.stuck_executions), crash_ms,
              crash_match ? "yes" : "NO");
  subc_bench::Json crash_cell;
  crash_cell.set("world", "mixed").set("procs", 3).set("steps", 2);
  subc_bench::set_rate_fields(crash_cell, crash_serial.executions, crash_ms);
  subc_bench::set_crash_fields(crash_cell, crash_opts.max_crashes,
                               crash_serial.crashed_executions,
                               crash_serial.stuck_executions);
  crash_cell.set("counts_match", crash_match);

  // Series 3 — stateful exploration (Explorer::Options::stateful): every
  // cell explored at {none, sleep, sleep+stateful} × threads {1, 4}. On
  // convergent worlds (mixed: last-writer-wins registers funnel many
  // interleavings into few states) the visited set collapses the tree well
  // beyond what sleep sets alone manage; the acceptance gate below requires
  // >= 5x fewer executions than sleep-alone on at least one mixed cell.
  std::printf("\nseries 3: stateful exploration, executions at "
              "{none, sleep, sleep+stateful}\n");
  std::printf("%6s %6s %6s %12s %12s %12s %8s %8s\n", "world", "procs",
              "steps", "none", "sleep", "stateful", "cuts", "factor");
  constexpr std::int64_t kStatefulCapacity = std::int64_t{1} << 20;
  const Cell stateful_cells[] = {{World::kMixed, 2, 6},
                                 {World::kMixed, 3, 3},
                                 {World::kMixed, 3, 4},
                                 {World::kReads, 3, 3}};
  std::vector<subc_bench::Json> series3;
  double best_stateful_factor = 0.0;
  long long total_stateful_cuts = 0;
  StatefulCell headline_stateful_cell;  // mixed 3x4: the headline grid point
  for (const auto& [world, procs, steps] : stateful_cells) {
    const StatefulCell cell =
        run_stateful_cell(world, procs, steps, kStatefulCapacity);
    ok = ok && cell.ok;
    const double factor =
        cell.execs_stateful > 0
            ? static_cast<double>(cell.execs_sleep) /
                  static_cast<double>(cell.execs_stateful)
            : 0.0;
    if (world == World::kMixed) {
      best_stateful_factor = std::max(best_stateful_factor, factor);
    }
    if (world == World::kMixed && procs == 3 && steps == 4) {
      headline_stateful_cell = cell;
    }
    total_stateful_cuts += cell.stateful_cuts;
    std::printf("%6s %6d %6d %12lld %12lld %12lld %8lld %7.1fx\n",
                world_name(world), procs, steps, cell.execs_none,
                cell.execs_sleep, cell.execs_stateful, cell.stateful_cuts,
                factor);
    subc_bench::Json row;
    row.set("world", world_name(world))
        .set("procs", procs)
        .set("steps", steps)
        .set("executions_none", cell.execs_none)
        .set("executions_sleep", cell.execs_sleep)
        .set("executions_stateful", cell.execs_stateful)
        .set("stateful_cuts", cell.stateful_cuts)
        .set("stateful_states", cell.stateful_states)
        .set("stateful_vs_sleep_factor", factor)
        .set("none_ms", cell.none_ms)
        .set("sleep_ms", cell.sleep_ms)
        .set("stateful_ms", cell.stateful_ms)
        .set("none_executions_per_sec",
             cell.none_ms > 0
                 ? 1000.0 * static_cast<double>(cell.execs_none) / cell.none_ms
                 : 0.0)
        .set("sleep_executions_per_sec",
             cell.sleep_ms > 0 ? 1000.0 *
                                     static_cast<double>(cell.execs_sleep) /
                                     cell.sleep_ms
                               : 0.0)
        .set("stateful_executions_per_sec",
             cell.stateful_ms > 0
                 ? 1000.0 * static_cast<double>(cell.execs_stateful) /
                       cell.stateful_ms
                 : 0.0)
        .set("verdicts_agree", cell.ok);
    series3.push_back(row);
  }
  const bool stateful_effective = best_stateful_factor >= 5.0;
  ok = ok && stateful_effective;

  // Stateful headline cell (mixed, 3 procs x 4 steps, serial
  // sleep+stateful): the stepped-engine twin must land on the identical
  // (executions, stateful_cuts) pair — serial stateful search is
  // deterministic and the two engines fingerprint identically.
  Explorer::Options st_opts;
  st_opts.max_executions = 5'000'000;
  st_opts.stateful = true;
  st_opts.stateful_capacity = kStatefulCapacity;
  const subc_bench::Stopwatch st_sw;
  const auto st_fiber = Explorer::explore(grid_body(World::kMixed, 3, 4),
                                          st_opts);
  const double st_ms = st_sw.ms();
  const auto st_stepped =
      Explorer::explore(stepped_grid_body(World::kMixed, 3, 4), st_opts);
  const bool st_engines_match =
      st_stepped.executions == st_fiber.executions &&
      st_stepped.stateful_cuts == st_fiber.stateful_cuts;
  ok = ok && st_fiber.ok() && st_fiber.complete && st_engines_match;
  std::printf("\nstateful headline cell (mixed, 3 procs x 4 steps, serial "
              "sleep+stateful): %lld executions (%lld cuts, %lld states) in "
              "%.1f ms; best mixed-cell factor vs sleep-alone %.1fx "
              "(gate >= 5x: %s); stepped twin identical: %s\n",
              static_cast<long long>(st_fiber.executions),
              static_cast<long long>(st_fiber.stateful_cuts),
              static_cast<long long>(st_fiber.stateful_states), st_ms,
              best_stateful_factor, stateful_effective ? "yes" : "NO",
              st_engines_match ? "yes" : "NO");
  subc_bench::Json stateful_headline;
  stateful_headline.set("world", "mixed").set("procs", 3).set("steps", 4);
  subc_bench::set_rate_fields(stateful_headline, st_fiber.executions, st_ms);
  subc_bench::set_stateful_fields(stateful_headline, st_fiber.stateful_cuts,
                                  st_fiber.stateful_states,
                                  kStatefulCapacity);
  stateful_headline
      .set("executions_sleep_only", headline_stateful_cell.execs_sleep)
      .set("stateful_vs_sleep_factor",
           st_fiber.executions > 0
               ? static_cast<double>(headline_stateful_cell.execs_sleep) /
                     static_cast<double>(st_fiber.executions)
               : 0.0)
      .set("best_mixed_factor", best_stateful_factor)
      .set("stepped_executions_match", st_engines_match);

  subc_bench::Json out;
  out.set("bench", "F5")
      .set("headline", headline_cell)
      .set("headline_stepped", stepped_cell)
      .set("headline_stateful", stateful_headline)
      .set("crash_exploration", crash_cell)
      .set("threads", threads)
      .set("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()))
      .set("unreduced_total_ms", unreduced_total_ms)
      .set("reduced_total_ms", reduced_total_ms)
      .set("parallel_total_ms", parallel_total_ms)
      .set("reduction_speedup", overall_reduction_speedup)
      .set("parallel_speedup", overall_parallel_speedup)
      .set("executions_unreduced", total_executions_unreduced)
      .set("executions_reduced", total_executions_reduced)
      .set("execution_reduction_factor", overall_factor)
      .set("cells_at_2x", cells_at_2x)
      .set("cells_total", total_cells)
      .set("series1", series1)
      .set("series2", series2)
      .set("series3_stateful", series3)
      .set("pass", ok);
  subc_bench::set_reduction_fields(out, total_reduced_subtrees,
                                   total_executions_reduced);
  subc_bench::set_stateful_fields(out, total_stateful_cuts,
                                  st_fiber.stateful_states,
                                  kStatefulCapacity);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, crash_opts.max_crashes,
                               crash_serial.crashed_executions,
                               crash_serial.stuck_executions);
  subc_bench::set_recovery_fields(out, crash_opts.max_recoveries,
                                  crash_serial.recovered_executions);
  subc_bench::write_json("BENCH_F5.json", out);

  std::printf("\nF5 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
