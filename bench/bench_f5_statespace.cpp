// Experiment F5 — state-space growth and checker scaling.
//
// Series 1: exhaustive-explorer execution counts versus processes × steps
// (the multinomial schedule-tree sizes), measured against the closed form —
// calibrates what "exhaustive" can mean for T1/T5/T6.
// Series 2: Wing–Gong checker time versus history length for maximally
// concurrent 1sWRN histories (everything overlaps everything).
#include <chrono>
#include <cstdio>

#include "subc/checking/linearizability.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace {

using namespace subc;

long long count_executions(int procs, int steps) {
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        for (int p = 0; p < procs; ++p) {
          rt.add_process([&](Context& ctx) {
            for (int s = 0; s < steps; ++s) {
              reg.read(ctx);
            }
          });
        }
        rt.run(driver);
      },
      Explorer::Options{.max_executions = 5'000'000});
  return result.complete ? result.executions : -result.executions;
}

double time_checker(int k) {
  // Build a maximally-overlapping completed history: all invocations open,
  // then all responses, values consistent with some linearization.
  History history;
  std::vector<std::size_t> handles;
  for (int i = 0; i < k; ++i) {
    handles.push_back(
        history.invoke(i, {static_cast<Value>(i), static_cast<Value>(100 + i)}));
  }
  // Responses as if linearized in index order: op i returns ⊥ except the
  // last, which sees slot 0.
  for (int i = 0; i < k; ++i) {
    const Value response = (i == k - 1) ? 100 : kBottom;
    history.respond(handles[static_cast<std::size_t>(i)], {response});
  }
  const auto start = std::chrono::steady_clock::now();
  const auto result = check_linearizable(OneShotWrnSpec{k}, history.entries());
  const auto stop = std::chrono::steady_clock::now();
  if (!result.linearizable) {
    return -1;
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  std::printf("F5: explorer state-space growth and checker scaling\n\n");
  std::printf("series 1: exhaustive executions vs (processes, steps/proc)\n");
  std::printf("%6s %6s %14s\n", "procs", "steps", "executions");
  struct Cell {
    int procs;
    int steps;
  };
  const Cell cells[] = {{2, 2}, {2, 4}, {2, 6}, {3, 2}, {3, 3},
                        {3, 4}, {4, 2}, {4, 3}, {5, 2}};
  for (const auto& [procs, steps] : cells) {
    const long long executions = count_executions(procs, steps);
    std::printf("%6d %6d %14lld%s\n", procs, steps,
                executions < 0 ? -executions : executions,
                executions < 0 ? " (truncated)" : "");
  }

  std::printf("\nseries 2: Wing–Gong checker on maximally concurrent "
              "1sWRN_k histories\n");
  std::printf("%6s %14s\n", "k", "time (ms)");
  bool ok = true;
  for (const int k : {4, 8, 12, 16, 20}) {
    const double ms = time_checker(k);
    if (ms < 0) {
      ok = false;
      std::printf("%6d %14s\n", k, "NOT LINEARIZABLE?!");
    } else {
      std::printf("%6d %14.3f\n", k, ms);
    }
  }
  std::printf(
      "\nreading: schedule counts follow the multinomial "
      "(Σsteps)!/Π(steps!);\nthe checker's memoized DFS stays polynomial-ish "
      "on WRN histories because\nstate keys collapse equivalent "
      "linearization prefixes.\n");
  std::printf("\nF5 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
