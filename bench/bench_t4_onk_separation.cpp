// Experiment T4 — the PODC 2016 hierarchy at consensus levels n ≥ 2:
// O_{n,k} vs O_{n,k+1} at N_k = nk+n+k processes.
//
// Two layers of evidence per (n,k):
//  1. Calculus: the optimal-partition agreement of O_{n,k} at N_k is k+2
//     while O_{n,k+1} achieves k+1 (the 2016 separation statement), with
//     the DP cross-checked by brute force on small instances.
//  2. Simulator: the OnkSetConsensus construction is actually executed at
//     N_k for both objects; the worst observed distinct-decision counts
//     must match the calculus exactly.
// Simulation sweeps run on the parallel RandomSweep; results also land in
// BENCH_T4.json.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/onk_algorithms.hpp"
#include "subc/core/consensus_number.hpp"
#include "subc/core/hierarchy.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

int simulate_worst_distinct(int n, int components, int procs, int rounds,
                            int threads) {
  std::vector<Value> inputs;
  for (int p = 0; p < procs; ++p) {
    inputs.push_back(1000 + p);
  }
  std::mutex mu;
  int worst = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        OnkSetConsensus algorithm(n, components, procs);
        for (int p = 0; p < procs; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, algorithm.agreement());
        const int distinct = distinct_decisions(run.decisions);
        const std::lock_guard<std::mutex> lock(mu);
        worst = std::max(worst, distinct);
      },
      rounds, 1, threads);
  if (!result.ok()) {
    std::printf("  !! simulator violation: %s\n", result.violation->c_str());
    return -1;
  }
  return worst;
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("T4: 2016 separation — O_{n,k} vs O_{n,k+1} at N_k = nk+n+k "
              "(%d threads)\n\n", threads);
  std::printf("%3s %3s %5s | %9s %9s | %9s %9s | %s\n", "n", "k", "N_k",
              "calc k+1", "calc k+2", "sim(k+1)", "sim(k+2)", "separated");
  bool ok = true;
  std::vector<subc_bench::Json> rows;
  for (int n = 2; n <= 5; ++n) {
    for (int k = 1; k <= 4; ++k) {
      const OnkSeparation sep = onk_separation(n, k);
      // Brute-force cross-check for small system sizes.
      if (sep.system_size <= 14) {
        if (onk_best_agreement_bruteforce(n, k, sep.system_size) !=
                sep.agreement_with_k ||
            onk_best_agreement_bruteforce(n, k + 1, sep.system_size) !=
                sep.agreement_with_k1) {
          std::printf("  !! brute-force mismatch at n=%d k=%d\n", n, k);
          ok = false;
        }
      }
      const int rounds = sep.system_size <= 10 ? 1500 : 400;
      const int sim_k1 =
          simulate_worst_distinct(n, k + 1, sep.system_size, rounds, threads);
      const int sim_k =
          simulate_worst_distinct(n, k, sep.system_size, rounds, threads);
      const bool row_ok = sep.agreement_with_k1 == k + 1 &&
                          sep.agreement_with_k == k + 2 &&
                          sim_k1 == sep.agreement_with_k1 &&
                          sim_k == sep.agreement_with_k;
      ok = ok && row_ok;
      std::printf("%3d %3d %5d | %9d %9d | %9d %9d | %s\n", n, k,
                  sep.system_size, sep.agreement_with_k1, sep.agreement_with_k,
                  sim_k1, sim_k, sep.separated() ? "yes" : "NO");
      subc_bench::Json row;
      row.set("n", n)
          .set("k", k)
          .set("system_size", sep.system_size)
          .set("calc_k1", sep.agreement_with_k1)
          .set("calc_k", sep.agreement_with_k)
          .set("sim_k1", sim_k1)
          .set("sim_k", sim_k)
          .set("ok", row_ok);
      rows.push_back(row);
    }
  }
  std::printf("\nconsensus-number boundary of the components, synthesized\n"
              "(announce/propose/decide family on one GAC(n,i)):\n");
  std::printf("%4s %4s | %14s %14s | %14s %14s\n", "n", "i", "protos(n)",
              "correct(n)", "protos(n+1)", "correct(n+1)");
  struct SynthCase {
    int n;
    int i;
  };
  std::vector<subc_bench::Json> synth_rows;
  for (const auto [n, i] : {SynthCase{2, 1}, SynthCase{2, 2},
                            SynthCase{3, 1}}) {
    const auto at_n = search_gac_consensus_protocols(n, i, n);
    const auto at_n1 = search_gac_consensus_protocols(n, i, n + 1);
    ok = ok && at_n.correct > 0 && at_n1.correct == 0;
    std::printf("%4d %4d | %14ld %14ld | %14ld %14ld\n", n, i,
                at_n.protocols_checked, at_n.correct,
                at_n1.protocols_checked, at_n1.correct);
    subc_bench::Json row;
    row.set("n", n)
        .set("i", i)
        .set("correct_at_n", static_cast<std::int64_t>(at_n.correct))
        .set("correct_at_n1", static_cast<std::int64_t>(at_n1.correct));
    synth_rows.push_back(row);
  }

  subc_bench::Json out;
  out.set("bench", "T4")
      .set("threads", threads)
      .set("separations", rows)
      .set("synthesis", synth_rows)
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T4.json", out);

  std::printf(
      "\nreading: with N_k processes, O_{n,k+1} solves (N_k, k+1)-set\n"
      "consensus (one fresh GAC(n,k) component) while O_{n,k}'s optimum is\n"
      "(N_k, k+2) — consensus number stays n for both (the synthesis table:\n"
      "winning protocols at n processes, none at n+1), so consensus number\n"
      "alone cannot rank them (the 2016 theorem, reconstructed).\n");
  std::printf("\nT4 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
