// Experiment F1 — Algorithm 3 cost scaling.
//
// Algorithm 3 pays for anonymity: |F| rounds of WRN objects after a
// renaming phase. This sweep reports, per k and function family, the number
// of objects allocated (|F|), and the measured worst/mean shared-memory
// steps per process and WRN objects actually touched before deciding —
// the paper gives only the existential construction; the series shows the
// constant-factor shape ((2k−1 choose k) vs k^(2k−1)). Sweeps run on the
// parallel RandomSweep; results also land in BENCH_F1.json.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

struct Row {
  int k = 0;
  const char* family = "";
  long objects = 0;
  long worst_steps = 0;
  double mean_steps = 0;
  std::int64_t runs = 0;
  double ms = 0;
  bool ok = true;
};

Row measure(int k, FunctionFamily family, const char* name, int rounds,
            int threads) {
  Row row;
  row.k = k;
  row.family = name;
  row.objects = static_cast<long>(make_function_family(k, family).size());
  // Accumulators are shared across sweep workers; guard them. Everything
  // else in the body is built fresh per execution.
  std::mutex mu;
  long total_steps = 0;
  long samples = 0;
  long worst = 0;
  const subc_bench::Stopwatch sw;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(k, k, family);
        std::vector<Value> inputs;
        for (int p = 0; p < k; ++p) {
          inputs.push_back(500 + p);
        }
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p, 9000 + 17 * p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, 50'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k - 1);
        const std::lock_guard<std::mutex> lock(mu);
        for (int p = 0; p < k; ++p) {
          const long steps = static_cast<long>(rt.steps_of(p));
          total_steps += steps;
          worst = std::max(worst, steps);
          ++samples;
        }
      },
      rounds, 1, threads);
  row.ms = sw.ms();
  row.runs = result.runs;
  row.ok = result.ok();
  row.worst_steps = worst;
  row.mean_steps = samples ? static_cast<double>(total_steps) /
                                 static_cast<double>(samples)
                           : 0.0;
  return row;
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("F1: Algorithm 3 cost scaling (renaming + |F| WRN rounds), "
              "%d threads\n\n", threads);
  std::printf("%4s  %-9s %9s  %12s  %12s  %s\n", "k", "family", "|F|",
              "mean steps", "worst steps", "ok");
  bool ok = true;
  std::vector<subc_bench::Json> rows;
  const auto emit = [&](const Row& row) {
    ok = ok && row.ok;
    std::printf("%4d  %-9s %9ld  %12.1f  %12ld  %s\n", row.k, row.family,
                row.objects, row.mean_steps, row.worst_steps,
                row.ok ? "yes" : "NO");
    subc_bench::Json json_row;
    json_row.set("k", row.k)
        .set("family", row.family)
        .set("objects", static_cast<std::int64_t>(row.objects))
        .set("mean_steps", row.mean_steps)
        .set("worst_steps", static_cast<std::int64_t>(row.worst_steps))
        .set("runs", row.runs)
        .set("ms", row.ms)
        .set("runs_per_sec",
             row.ms > 0 ? 1000.0 * static_cast<double>(row.runs) / row.ms : 0.0)
        .set("ok", row.ok);
    rows.push_back(json_row);
  };
  for (const int k : {3, 4, 5}) {
    emit(measure(k, FunctionFamily::kCovering, "covering", k <= 4 ? 60 : 25,
                 threads));
  }
  emit(measure(3, FunctionFamily::kFull, "full", 20, threads));
  std::printf(
      "\nreading: the covering family keeps |F| at C(2k-1,k) versus the\n"
      "paper's all-functions family k^(2k-1); worst-case steps grow with\n"
      "|F| (a process that never meets a non-⊥ answer sweeps every round).\n");
  subc_bench::Json out;
  out.set("bench", "F1").set("threads", threads).set("rows", rows).set(
      "pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_F1.json", out);
  std::printf("\nF1 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
