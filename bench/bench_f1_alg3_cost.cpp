// Experiment F1 — Algorithm 3 cost scaling.
//
// Algorithm 3 pays for anonymity: |F| rounds of WRN objects after a
// renaming phase. This sweep reports, per k and function family, the number
// of objects allocated (|F|), and the measured worst/mean shared-memory
// steps per process and WRN objects actually touched before deciding —
// the paper gives only the existential construction; the series shows the
// constant-factor shape ((2k−1 choose k) vs k^(2k−1)).
#include <algorithm>
#include <cstdio>

#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

struct Row {
  int k = 0;
  const char* family = "";
  long objects = 0;
  long worst_steps = 0;
  double mean_steps = 0;
  bool ok = true;
};

Row measure(int k, FunctionFamily family, const char* name, int rounds) {
  Row row;
  row.k = k;
  row.family = name;
  row.objects = static_cast<long>(make_function_family(k, family).size());
  long total_steps = 0;
  long samples = 0;
  long worst = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(k, k, family);
        std::vector<Value> inputs;
        for (int p = 0; p < k; ++p) {
          inputs.push_back(500 + p);
        }
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p, 9000 + 17 * p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, 50'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k - 1);
        for (int p = 0; p < k; ++p) {
          const long steps = static_cast<long>(rt.steps_of(p));
          total_steps += steps;
          worst = std::max(worst, steps);
          ++samples;
        }
      },
      rounds);
  row.ok = result.ok();
  row.worst_steps = worst;
  row.mean_steps = samples ? static_cast<double>(total_steps) /
                                 static_cast<double>(samples)
                           : 0.0;
  return row;
}

}  // namespace

int main() {
  std::printf("F1: Algorithm 3 cost scaling (renaming + |F| WRN rounds)\n\n");
  std::printf("%4s  %-9s %9s  %12s  %12s  %s\n", "k", "family", "|F|",
              "mean steps", "worst steps", "ok");
  bool ok = true;
  for (const int k : {3, 4, 5}) {
    const Row row =
        measure(k, FunctionFamily::kCovering, "covering", k <= 4 ? 60 : 25);
    ok = ok && row.ok;
    std::printf("%4d  %-9s %9ld  %12.1f  %12ld  %s\n", row.k, row.family,
                row.objects, row.mean_steps, row.worst_steps,
                row.ok ? "yes" : "NO");
  }
  {
    const Row row = measure(3, FunctionFamily::kFull, "full", 20);
    ok = ok && row.ok;
    std::printf("%4d  %-9s %9ld  %12.1f  %12ld  %s\n", row.k, row.family,
                row.objects, row.mean_steps, row.worst_steps,
                row.ok ? "yes" : "NO");
  }
  std::printf(
      "\nreading: the covering family keeps |F| at C(2k-1,k) versus the\n"
      "paper's all-functions family k^(2k-1); worst-case steps grow with\n"
      "|F| (a process that never meets a non-⊥ answer sweeps every round).\n");
  std::printf("\nF1 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
