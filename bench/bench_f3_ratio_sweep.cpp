// Experiment F3 — the set-consensus ratio of WRN_k (Section 7.1,
// Algorithm 6): the achievable m for n processes, swept over n and k.
//
// Prints the guaranteed agreement m(n,k) = (k−1)⌊n/k⌋ + min(k−1, n mod k)
// alongside the paper's headline ratio bound m/n ≥ (k−1)/k, and validates a
// sample of the grid in the simulator (worst observed distinct decisions
// must equal m exactly — the construction is tight). Validation sweeps run
// on the parallel RandomSweep; results also land in BENCH_F3.json.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

int simulate_worst_distinct(int n, int k, int rounds, int threads) {
  std::vector<Value> inputs;
  for (int p = 0; p < n; ++p) {
    inputs.push_back(100 + p);
  }
  std::mutex mu;
  int worst = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnRatioSetConsensus algorithm(n, k);
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, algorithm.agreement());
        const int distinct = distinct_decisions(run.decisions);
        const std::lock_guard<std::mutex> lock(mu);
        worst = std::max(worst, distinct);
      },
      rounds, 1, threads);
  return result.ok() ? worst : -1;
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("F3: Algorithm 6 — m-set consensus for n processes from "
              "WRN_k (%d threads)\n\n", threads);
  std::printf("guaranteed m(n,k); '*' marks simulator-validated cells "
              "(worst observed == m):\n\n");
  std::printf(" n\\k |");
  for (int k = 3; k <= 8; ++k) {
    std::printf("   %2d  ", k);
  }
  std::printf("\n-----+%s\n", "------------------------------------------");
  bool ok = true;
  std::vector<subc_bench::Json> cells;
  for (int n = 3; n <= 24; n += 3) {
    std::printf(" %3d |", n);
    for (int k = 3; k <= 8; ++k) {
      WrnRatioSetConsensus probe(n, k);
      const int m = probe.agreement();
      bool validated = false;
      if (n <= 12 && (k == 3 || k == n / 2 || k == 4)) {
        const int worst = simulate_worst_distinct(n, k, 300, threads);
        validated = worst == m;
        if (worst >= 0 && !validated) {
          ok = false;
        }
        subc_bench::Json cell;
        cell.set("n", n).set("k", k).set("m", m).set("worst", worst).set(
            "validated", validated);
        cells.push_back(cell);
      }
      std::printf(" %4d%s ", m, validated ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("\npaper example: n=12, k=3 -> m=%d (expected 8)\n",
              WrnRatioSetConsensus(12, 3).agreement());
  ok = ok && WrnRatioSetConsensus(12, 3).agreement() == 8;
  std::printf(
      "\nreading: the ratio m/n approaches (k-1)/k from above; larger k\n"
      "means proportionally more agreement per WRN object, and the\n"
      "hierarchy of Corollary 42 is strict in k.\n");
  subc_bench::Json out;
  out.set("bench", "F3")
      .set("threads", threads)
      .set("validated_cells", cells)
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_F3.json", out);
  std::printf("\nF3 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
