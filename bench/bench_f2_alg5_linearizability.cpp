// Experiment F2 — Algorithm 5 cost and checker scaling.
//
// Two series over k:
//  * construction cost: shared-memory steps per 1sWRN operation implemented
//    by Algorithm 5 (announce + doorway + election + two snapshots), with
//    atomic versus register-built snapshots — the price of the paper's
//    construction in base-object steps;
//  * verification cost: Wing–Gong checker time on the recorded histories.
// Sweeps run on the parallel RandomSweep; results also land in
// BENCH_F2.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

struct Row {
  int k = 0;
  const char* snapshots = "";
  double mean_steps_per_op = 0;
  long worst_steps_per_op = 0;
  double checker_ms_per_history = 0;
  std::int64_t runs = 0;
  double ms = 0;
  bool ok = true;
};

Row measure(int k, bool register_snapshots, int rounds, int threads) {
  Row row;
  row.k = k;
  row.snapshots = register_snapshots ? "registers" : "atomic";
  // Shared accumulators (guarded); the Runtime/History are per-execution.
  std::mutex mu;
  long total_steps = 0;
  long ops = 0;
  long worst = 0;
  double checker_ms = 0;
  int histories = 0;
  const subc_bench::Stopwatch sw;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(k, register_snapshots);
        History history;
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            object.one_shot_wrn(ctx, p, 100 + p, &history);
          });
        }
        rt.run(driver, 10'000'000);
        const auto start = std::chrono::steady_clock::now();
        const auto check =
            check_linearizable(OneShotWrnSpec{k}, history.entries());
        const auto stop = std::chrono::steady_clock::now();
        {
          const std::lock_guard<std::mutex> lock(mu);
          for (int p = 0; p < k; ++p) {
            const long steps = static_cast<long>(rt.steps_of(p));
            total_steps += steps;
            worst = std::max(worst, steps);
            ++ops;
          }
          checker_ms +=
              std::chrono::duration<double, std::milli>(stop - start).count();
          ++histories;
        }
        if (!check.linearizable) {
          throw SpecViolation("not linearizable: " + check.message);
        }
      },
      rounds, 1, threads);
  row.ms = sw.ms();
  row.runs = result.runs;
  row.ok = result.ok();
  row.mean_steps_per_op =
      ops ? static_cast<double>(total_steps) / static_cast<double>(ops) : 0;
  row.worst_steps_per_op = worst;
  row.checker_ms_per_history =
      histories ? checker_ms / static_cast<double>(histories) : 0;
  return row;
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("F2: Algorithm 5 — steps per implemented 1sWRN op and "
              "checker cost (%d threads)\n\n", threads);
  std::printf("%4s  %-10s %16s  %16s  %18s  %s\n", "k", "snapshots",
              "mean steps/op", "worst steps/op", "checker ms/history", "ok");
  bool ok = true;
  std::vector<subc_bench::Json> rows;
  const auto emit = [&](const Row& row) {
    ok = ok && row.ok;
    std::printf("%4d  %-10s %16.1f  %16ld  %18.3f  %s\n", row.k,
                row.snapshots, row.mean_steps_per_op, row.worst_steps_per_op,
                row.checker_ms_per_history, row.ok ? "yes" : "NO");
    subc_bench::Json json_row;
    json_row.set("k", row.k)
        .set("snapshots", row.snapshots)
        .set("mean_steps_per_op", row.mean_steps_per_op)
        .set("worst_steps_per_op",
             static_cast<std::int64_t>(row.worst_steps_per_op))
        .set("checker_ms_per_history", row.checker_ms_per_history)
        .set("runs", row.runs)
        .set("ms", row.ms)
        .set("runs_per_sec",
             row.ms > 0 ? 1000.0 * static_cast<double>(row.runs) / row.ms : 0.0)
        .set("ok", row.ok);
    rows.push_back(json_row);
  };
  for (const int k : {3, 4, 5, 6}) {
    emit(measure(k, false, 400, threads));
  }
  for (const int k : {3, 4}) {
    emit(measure(k, true, 120, threads));
  }
  std::printf(
      "\nreading: with atomic snapshots an operation costs O(1) steps\n"
      "(announce, doorway, election, two snapshots, one view publish);\n"
      "register-built snapshots multiply each snapshot into O(k) collects\n"
      "(and updates embed a scan), which is the register-grounded price.\n");
  // Exhaustive crash-exploration cell: every single-crash placement over
  // the §5 doorway scenario (w1-then-w0 against a concurrent w2, k = 3) is
  // enumerated with f = 1 and each surviving history checked linearizable —
  // the strongest form of the claim the randomized sweeps above sample.
  Explorer::Options crash_opts;
  crash_opts.max_crashes = 1;
  const subc_bench::Stopwatch crash_sw;
  const auto crash_result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3);
        History history;
        rt.add_process([&](Context& ctx) {
          object.one_shot_wrn(ctx, 1, 101, &history);
          object.one_shot_wrn(ctx, 0, 100, &history);
        });
        rt.add_process(
            [&](Context& ctx) { object.one_shot_wrn(ctx, 2, 102, &history); });
        rt.run(driver);
        require_linearizable(OneShotWrnSpec{3}, history);
      },
      crash_opts);
  const double crash_ms = crash_sw.ms();
  ok = ok && crash_result.ok() && crash_result.complete &&
       crash_result.crashed_executions > 0;
  std::printf("\nexhaustive crash exploration (doorway scenario, f=1): "
              "%lld executions (%lld with a crash landed) in %.1f ms — %s\n",
              static_cast<long long>(crash_result.executions),
              static_cast<long long>(crash_result.crashed_executions),
              crash_ms,
              crash_result.ok() && crash_result.complete
                  ? "all linearizable"
                  : "FAILED");
  subc_bench::Json crash_cell;
  crash_cell.set("scenario", "doorway(k=3)");
  subc_bench::set_rate_fields(crash_cell, crash_result.executions, crash_ms);
  subc_bench::set_crash_fields(crash_cell, crash_opts.max_crashes,
                               crash_result.crashed_executions,
                               crash_result.stuck_executions);
  crash_cell.set("complete", crash_result.complete)
      .set("ok", crash_result.ok());

  subc_bench::Json out;
  out.set("bench", "F2")
      .set("threads", threads)
      .set("rows", rows)
      .set("crash_exploration", crash_cell)
      .set("pass", ok);
  // The randomized sweeps above never drive the exhaustive explorer; the
  // crash cell's reduced tallies are what this artifact carries.
  subc_bench::set_reduction_fields(out, crash_result.reduced_subtrees,
                                   crash_result.executions);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, crash_opts.max_crashes,
                               crash_result.crashed_executions,
                               crash_result.stuck_executions);
  subc_bench::set_recovery_fields(out, crash_opts.max_recoveries,
                                  crash_result.recovered_executions);
  subc_bench::write_json("BENCH_F2.json", out);
  std::printf("\nF2 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
