// Experiment F2 — Algorithm 5 cost and checker scaling.
//
// Two series over k:
//  * construction cost: shared-memory steps per 1sWRN operation implemented
//    by Algorithm 5 (announce + doorway + election + two snapshots), with
//    atomic versus register-built snapshots — the price of the paper's
//    construction in base-object steps;
//  * verification cost: Wing–Gong checker time on the recorded histories.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

struct Row {
  int k = 0;
  const char* snapshots = "";
  double mean_steps_per_op = 0;
  long worst_steps_per_op = 0;
  double checker_ms_per_history = 0;
  bool ok = true;
};

Row measure(int k, bool register_snapshots, int rounds) {
  Row row;
  row.k = k;
  row.snapshots = register_snapshots ? "registers" : "atomic";
  long total_steps = 0;
  long ops = 0;
  long worst = 0;
  double checker_ms = 0;
  int histories = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(k, register_snapshots);
        History history;
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            object.one_shot_wrn(ctx, p, 100 + p, &history);
          });
        }
        rt.run(driver, 10'000'000);
        for (int p = 0; p < k; ++p) {
          const long steps = static_cast<long>(rt.steps_of(p));
          total_steps += steps;
          worst = std::max(worst, steps);
          ++ops;
        }
        const auto start = std::chrono::steady_clock::now();
        const auto check =
            check_linearizable(OneShotWrnSpec{k}, history.entries());
        const auto stop = std::chrono::steady_clock::now();
        checker_ms += std::chrono::duration<double, std::milli>(stop - start)
                          .count();
        ++histories;
        if (!check.linearizable) {
          throw SpecViolation("not linearizable: " + check.message);
        }
      },
      rounds);
  row.ok = result.ok();
  row.mean_steps_per_op =
      ops ? static_cast<double>(total_steps) / static_cast<double>(ops) : 0;
  row.worst_steps_per_op = worst;
  row.checker_ms_per_history =
      histories ? checker_ms / static_cast<double>(histories) : 0;
  return row;
}

}  // namespace

int main() {
  std::printf("F2: Algorithm 5 — steps per implemented 1sWRN op and "
              "checker cost\n\n");
  std::printf("%4s  %-10s %16s  %16s  %18s  %s\n", "k", "snapshots",
              "mean steps/op", "worst steps/op", "checker ms/history", "ok");
  bool ok = true;
  for (const int k : {3, 4, 5, 6}) {
    const Row row = measure(k, false, 400);
    ok = ok && row.ok;
    std::printf("%4d  %-10s %16.1f  %16ld  %18.3f  %s\n", row.k,
                row.snapshots, row.mean_steps_per_op, row.worst_steps_per_op,
                row.checker_ms_per_history, row.ok ? "yes" : "NO");
  }
  for (const int k : {3, 4}) {
    const Row row = measure(k, true, 120);
    ok = ok && row.ok;
    std::printf("%4d  %-10s %16.1f  %16ld  %18.3f  %s\n", row.k,
                row.snapshots, row.mean_steps_per_op, row.worst_steps_per_op,
                row.checker_ms_per_history, row.ok ? "yes" : "NO");
  }
  std::printf(
      "\nreading: with atomic snapshots an operation costs O(1) steps\n"
      "(announce, doorway, election, two snapshots, one view publish);\n"
      "register-built snapshots multiply each snapshot into O(k) collects\n"
      "(and updates embed a scan), which is the register-grounded price.\n");
  std::printf("\nF2 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
