// Experiment T8 — the Borowsky–Gafni simulation (the machinery behind the
// papers' [9] and the Theorem 41 lower bound), quantified.
//
// Grid over (simulators m, simulated n, agreement k): validity and
// k-agreement of the transferred set-consensus task under adversarial
// random schedules, with worst observed distinct outputs; then the
// resilience series: crash f simulators and verify survivors finish with
// intact agreement for f ≤ k−1.
#include <algorithm>
#include <cstdio>

#include "subc/algorithms/bg_simulation.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

bool grid_row(int m, int n, int k, int rounds) {
  std::vector<Value> inputs;
  for (int s = 0; s < m; ++s) {
    inputs.push_back(100 + 3 * s);
  }
  int worst = 0;
  long total_steps = 0;
  long samples = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        BgSimulation bg(m, n, k);
        for (int s = 0; s < m; ++s) {
          rt.add_process([&, s](Context& ctx) {
            ctx.decide(
                bg.run_simulator(ctx, s, inputs[static_cast<std::size_t>(s)]));
          });
        }
        const auto run = rt.run(driver, 10'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k);
        worst = std::max(worst, distinct_decisions(run.decisions));
        total_steps += run.total_steps;
        ++samples;
      },
      rounds);
  std::printf("%4d %4d %4d | %6d (<= %d) | %10.1f | %s\n", m, n, k, worst, k,
              static_cast<double>(total_steps) / static_cast<double>(samples),
              result.ok() ? "ok" : result.violation->c_str());
  return result.ok() && worst <= k;
}

bool crash_row(int m, int n, int k, int crashes) {
  std::vector<Value> inputs;
  for (int s = 0; s < m; ++s) {
    inputs.push_back(100 + 3 * s);
  }
  bool ok = true;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Runtime rt;
    BgSimulation bg(m, n, k);
    for (int s = 0; s < m; ++s) {
      rt.add_process([&, s](Context& ctx) {
        ctx.decide(
            bg.run_simulator(ctx, s, inputs[static_cast<std::size_t>(s)]));
      });
    }
    for (int c = 0; c < crashes; ++c) {
      rt.crash(c);  // crash the first `crashes` simulators outright
    }
    RandomDriver driver(seed);
    const auto result = rt.run(driver, 10'000'000);
    try {
      check_decided_if_done(result);
      check_validity(inputs, result.decisions);
      check_k_agreement(result.decisions, k);
      for (int s = crashes; s < m; ++s) {
        if (result.states[static_cast<std::size_t>(s)] != ProcState::kDone) {
          throw SpecViolation("survivor stalled");
        }
      }
    } catch (const SpecViolation&) {
      ok = false;
    }
  }
  std::printf("%4d %4d %4d | %7d | %s\n", m, n, k, crashes,
              ok ? "survivors fine" : "VIOLATION");
  return ok;
}

}  // namespace

int main() {
  std::printf("T8: BG simulation — k-set consensus transfer\n\n");
  std::printf("   m    n    k |  worst distinct |  mean steps | status\n");
  bool ok = true;
  ok &= grid_row(2, 4, 1, 200);
  ok &= grid_row(3, 5, 2, 200);
  ok &= grid_row(3, 6, 2, 200);
  ok &= grid_row(4, 6, 3, 150);
  ok &= grid_row(4, 8, 2, 100);
  ok &= grid_row(5, 7, 3, 100);

  std::printf("\nresilience: f simulators crashed before starting "
              "(f <= k-1 tolerated)\n");
  std::printf("   m    n    k | crashes | status\n");
  ok &= crash_row(3, 5, 2, 1);
  ok &= crash_row(4, 6, 3, 2);
  ok &= crash_row(4, 8, 2, 1);
  ok &= crash_row(5, 7, 3, 2);

  std::printf(
      "\nreading: m simulators jointly run the (k-1)-resilient n-process\n"
      "quorum-min protocol; every simulated nondeterministic step goes\n"
      "through safe agreement, so all simulators observe one execution and\n"
      "a crashed simulator blocks at most one simulated process. This is\n"
      "the engine behind the strong-set-election construction ([9]) and\n"
      "the Theorem 41 lower bound.\n");
  std::printf("\nT8 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
