// Experiment T8 — the Borowsky–Gafni simulation (the machinery behind the
// papers' [9] and the Theorem 41 lower bound), quantified.
//
// Grid over (simulators m, simulated n, agreement k): validity and
// k-agreement of the transferred set-consensus task under adversarial
// random schedules, with worst observed distinct outputs; then the
// resilience series: crash f simulators and verify survivors finish with
// intact agreement for f ≤ k−1. Grid sweeps run on the parallel
// RandomSweep; results also land in BENCH_T8.json.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/bg_simulation.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

std::vector<subc_bench::Json> g_grid_rows;
std::vector<subc_bench::Json> g_crash_rows;

bool grid_row(int m, int n, int k, int rounds, int threads) {
  std::vector<Value> inputs;
  for (int s = 0; s < m; ++s) {
    inputs.push_back(100 + 3 * s);
  }
  std::mutex mu;
  int worst = 0;
  long total_steps = 0;
  long samples = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        BgSimulation bg(m, n, k);
        for (int s = 0; s < m; ++s) {
          rt.add_process([&, s](Context& ctx) {
            ctx.decide(
                bg.run_simulator(ctx, s, inputs[static_cast<std::size_t>(s)]));
          });
        }
        const auto run = rt.run(driver, 10'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k);
        const int distinct = distinct_decisions(run.decisions);
        const std::lock_guard<std::mutex> lock(mu);
        worst = std::max(worst, distinct);
        total_steps += run.total_steps;
        ++samples;
      },
      rounds, 1, threads);
  const double mean_steps =
      static_cast<double>(total_steps) / static_cast<double>(samples);
  std::printf("%4d %4d %4d | %6d (<= %d) | %10.1f | %s\n", m, n, k, worst, k,
              mean_steps, result.ok() ? "ok" : result.violation->c_str());
  const bool ok = result.ok() && worst <= k;
  subc_bench::Json row;
  row.set("m", m)
      .set("n", n)
      .set("k", k)
      .set("worst_distinct", worst)
      .set("mean_steps", mean_steps)
      .set("ok", ok);
  g_grid_rows.push_back(row);
  return ok;
}

bool crash_row(int m, int n, int k, int crashes) {
  std::vector<Value> inputs;
  for (int s = 0; s < m; ++s) {
    inputs.push_back(100 + 3 * s);
  }
  bool ok = true;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Runtime rt;
    BgSimulation bg(m, n, k);
    for (int s = 0; s < m; ++s) {
      rt.add_process([&, s](Context& ctx) {
        ctx.decide(
            bg.run_simulator(ctx, s, inputs[static_cast<std::size_t>(s)]));
      });
    }
    for (int c = 0; c < crashes; ++c) {
      rt.crash(c);  // crash the first `crashes` simulators outright
    }
    RandomDriver driver(seed);
    const auto result = rt.run(driver, 10'000'000);
    try {
      check_decided_if_done(result);
      check_validity(inputs, result.decisions);
      check_k_agreement(result.decisions, k);
      for (int s = crashes; s < m; ++s) {
        if (result.states[static_cast<std::size_t>(s)] != ProcState::kDone) {
          throw SpecViolation("survivor stalled");
        }
      }
    } catch (const SpecViolation&) {
      ok = false;
    }
  }
  std::printf("%4d %4d %4d | %7d | %s\n", m, n, k, crashes,
              ok ? "survivors fine" : "VIOLATION");
  subc_bench::Json row;
  row.set("m", m).set("n", n).set("k", k).set("crashes", crashes).set("ok",
                                                                      ok);
  g_crash_rows.push_back(row);
  return ok;
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("T8: BG simulation — k-set consensus transfer (%d threads)\n\n",
              threads);
  std::printf("   m    n    k |  worst distinct |  mean steps | status\n");
  bool ok = true;
  ok &= grid_row(2, 4, 1, 200, threads);
  ok &= grid_row(3, 5, 2, 200, threads);
  ok &= grid_row(3, 6, 2, 200, threads);
  ok &= grid_row(4, 6, 3, 150, threads);
  ok &= grid_row(4, 8, 2, 100, threads);
  ok &= grid_row(5, 7, 3, 100, threads);

  std::printf("\nresilience: f simulators crashed before starting "
              "(f <= k-1 tolerated)\n");
  std::printf("   m    n    k | crashes | status\n");
  ok &= crash_row(3, 5, 2, 1);
  ok &= crash_row(4, 6, 3, 2);
  ok &= crash_row(4, 8, 2, 1);
  ok &= crash_row(5, 7, 3, 2);

  subc_bench::Json out;
  out.set("bench", "T8")
      .set("threads", threads)
      .set("grid", g_grid_rows)
      .set("resilience", g_crash_rows)
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T8.json", out);

  std::printf(
      "\nreading: m simulators jointly run the (k-1)-resilient n-process\n"
      "quorum-min protocol; every simulated nondeterministic step goes\n"
      "through safe agreement, so all simulators observe one execution and\n"
      "a crashed simulator blocks at most one simulated process. This is\n"
      "the engine behind the strong-set-election construction ([9]) and\n"
      "the Theorem 41 lower bound.\n");
  std::printf("\nT8 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
