// Experiment T3 — Corollary 42: the infinite hierarchy among 1sWRN_k
// objects. Prints the implementability matrix (target k × source k') via
// the Theorem 2 equivalence 1sWRN_k ≡ (k,k−1)-set consensus, and verifies
// the strict-chain property on a wide range.
#include <cstdio>

#include "bench_util.hpp"
#include "subc/core/hierarchy.hpp"
#include "subc/runtime/value.hpp"

int main() {
  using namespace subc;

  std::printf("T3: Corollary 42 — the 1sWRN_k hierarchy (k >= 3)\n\n");
  std::printf("%s\n", format_wrn_matrix(3, 12).c_str());
  std::printf("reading: ✓ at (row k, column k') means 1sWRN_k is wait-free\n"
              "implementable from 1sWRN_{k'} objects and registers.\n"
              "Expected shape: upper triangle (including diagonal) only —\n"
              "smaller k is strictly stronger.\n\n");

  bool ok = true;
  long pairs = 0;
  for (int k = 3; k <= 24; ++k) {
    for (int k_prime = k + 1; k_prime <= 25; ++k_prime) {
      ++pairs;
      try {
        check_wrn_hierarchy_pair(k, k_prime);
      } catch (const SpecViolation&) {
        ok = false;
        std::printf("HIERARCHY BROKEN at k=%d, k'=%d\n", k, k_prime);
      }
    }
  }
  std::printf("strict-chain property verified on %ld pairs (k,k') with "
              "3 <= k < k' <= 25\n", pairs);
  subc_bench::Json out;
  out.set("bench", "T3")
      .set("pairs_verified", static_cast<std::int64_t>(pairs))
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T3.json", out);
  std::printf("\nT3 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
