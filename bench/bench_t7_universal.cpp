// Experiment T7 — universality of n-consensus (Herlihy), quantified.
//
// For the universal construction over n-consensus objects: per-operation
// step costs versus n (the price of round-robin helping), with correctness
// revalidated inline, and the contrast row the papers pivot on: a 1sWRN_k
// built universally from k-consensus objects costs O(n) steps/op, while the
// native deterministic 1sWRN_k object does it in exactly one step — yet
// (the whole point) the native object has consensus number 1 and could
// never provide the consensus objects the universal construction consumes.
// Sweeps run on the parallel RandomSweep; results also land in
// BENCH_T7.json.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/universal.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

struct CounterSpec {
  struct State {
    Value total = 0;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    response = {s.total};
    if (op[0] == 0) {
      s.total += op[1];
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& s) const {
    return std::to_string(s.total);
  }
};

struct Row {
  int n = 0;
  double mean_steps = 0;
  long worst_steps = 0;
  bool ok = true;
};

Row measure_counter(int n, int ops_per_proc, int rounds, int threads) {
  Row row;
  row.n = n;
  std::mutex mu;
  long total_steps = 0;
  long total_ops = 0;
  long worst = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        UniversalObject<CounterSpec> counter(
            CounterSpec{}, n, n * ops_per_proc + 4 * n);
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            for (int i = 0; i < ops_per_proc; ++i) {
              counter.apply(ctx, {0, p * 100 + i});
            }
          });
        }
        rt.run(driver, 10'000'000);
        {
          const std::lock_guard<std::mutex> lock(mu);
          for (int p = 0; p < n; ++p) {
            const long steps = static_cast<long>(rt.steps_of(p));
            total_steps += steps;
            total_ops += ops_per_proc;
            worst = std::max(worst, steps / ops_per_proc);
          }
        }
        // Inline validation: the log must contain every operation once.
        if (counter.log().size() !=
            static_cast<std::size_t>(n * ops_per_proc)) {
          throw SpecViolation("universal log lost or duplicated operations");
        }
      },
      rounds, 1, threads);
  row.ok = result.ok();
  row.mean_steps = total_ops ? static_cast<double>(total_steps) /
                                   static_cast<double>(total_ops)
                             : 0;
  row.worst_steps = worst;
  return row;
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("T7: Herlihy universality — universal construction costs "
              "(%d threads)\n\n", threads);
  std::printf("shared counter, 2 ops/process, from n-consensus objects:\n");
  std::printf("%4s  %16s  %16s  %s\n", "n", "mean steps/op", "worst steps/op",
              "ok");
  bool ok = true;
  std::vector<subc_bench::Json> rows;
  for (const int n : {2, 3, 4, 6, 8}) {
    const Row row = measure_counter(n, 2, 150, threads);
    ok = ok && row.ok;
    std::printf("%4d  %16.1f  %16ld  %s\n", row.n, row.mean_steps,
                row.worst_steps, row.ok ? "yes" : "NO");
    subc_bench::Json json_row;
    json_row.set("n", row.n)
        .set("mean_steps_per_op", row.mean_steps)
        .set("worst_steps_per_op", static_cast<std::int64_t>(row.worst_steps))
        .set("ok", row.ok);
    rows.push_back(json_row);
  }

  // The contrast row: 1sWRN_3 universal vs native.
  double universal_steps_per_op = 0;
  {
    std::mutex mu;
    long universal_steps = 0;
    const auto result = RandomSweep::run(
        [&](ScheduleDriver& driver) {
          Runtime rt;
          UniversalObject<OneShotWrnSpec> wrn(OneShotWrnSpec{3}, 3, 16);
          History history;
          for (int p = 0; p < 3; ++p) {
            rt.add_process([&, p](Context& ctx) {
              const std::vector<Value> op{static_cast<Value>(p),
                                          static_cast<Value>(100 + p)};
              const auto h = history.invoke(p, op);
              history.respond(h, wrn.apply(ctx, op));
            });
          }
          rt.run(driver);
          {
            const std::lock_guard<std::mutex> lock(mu);
            universal_steps +=
                rt.steps_of(0) + rt.steps_of(1) + rt.steps_of(2);
          }
          require_linearizable(OneShotWrnSpec{3}, history);
        },
        100, 1, threads);
    ok = ok && result.ok();
    universal_steps_per_op =
        static_cast<double>(universal_steps) / (100.0 * 3.0);
    std::printf("\n1sWRN_3 from 3-consensus objects: %.1f steps/op "
                "(linearizability checked)\n", universal_steps_per_op);
    std::printf("native deterministic 1sWRN_3:      1 step/op — but "
                "consensus number 1.\n");
  }

  subc_bench::Json out;
  out.set("bench", "T7")
      .set("threads", threads)
      .set("rows", rows)
      .set("wrn3_universal_steps_per_op", universal_steps_per_op)
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_T7.json", out);

  std::printf("\nT7 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
