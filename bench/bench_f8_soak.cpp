// Experiment F8 — soak: a fixed wall-clock budget of randomized mixed
// workloads over every major construction, validating everything on every
// run. The release-quality reliability artifact: zero violations expected
// across hundreds of thousands of executions.
//
//   bench_f8_soak [seconds-per-workload]   (default 2)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "bench_util.hpp"
#include "subc/algorithms/adopt_commit.hpp"
#include "subc/algorithms/bg_simulation.hpp"
#include "subc/algorithms/immediate_snapshot.hpp"
#include "subc/algorithms/safe_agreement.hpp"
#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;
using Clock = std::chrono::steady_clock;

struct Workload {
  const char* name;
  ExecutionBody body;
};

long soak_one(const Workload& workload, double seconds, bool* ok) {
  long runs = 0;
  std::uint64_t seed = 1;
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    RandomDriver driver(seed++);
    try {
      workload.body(driver);
    } catch (const std::exception& e) {
      std::printf("  !! %s violated at seed %llu: %s\n", workload.name,
                  static_cast<unsigned long long>(seed - 1), e.what());
      *ok = false;
      return runs;
    }
    ++runs;
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  std::printf("F8: soak — %.1f s of adversarial schedules per workload\n\n",
              seconds);

  const std::vector<Workload> workloads{
      {"algorithm2_k6",
       [](ScheduleDriver& driver) {
         Runtime rt;
         WrnSetConsensus task(6);
         const std::vector<Value> inputs{1, 2, 3, 4, 5, 6};
         for (int p = 0; p < 6; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(
                 task.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(driver);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 5);
       }},
      {"algorithm5_k4_linearizable",
       [](ScheduleDriver& driver) {
         Runtime rt;
         WrnFromSse object(4);
         History history;
         for (int p = 0; p < 4; ++p) {
           rt.add_process([&, p](Context& ctx) {
             object.one_shot_wrn(ctx, p, 100 + p, &history);
           });
         }
         rt.run(driver);
         require_linearizable(OneShotWrnSpec{4}, history);
       }},
      {"algorithm3_k3",
       [](ScheduleDriver& driver) {
         Runtime rt;
         AnonymousSetConsensus task(3, 3);
         const std::vector<Value> inputs{7, 8, 9};
         for (int p = 0; p < 3; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(task.propose(ctx, p, 900 + p,
                                     inputs[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(driver, 10'000'000);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 2);
       }},
      {"bg_simulation_352",
       [](ScheduleDriver& driver) {
         Runtime rt;
         BgSimulation bg(3, 5, 2);
         const std::vector<Value> inputs{10, 20, 30};
         for (int s = 0; s < 3; ++s) {
           rt.add_process([&, s](Context& ctx) {
             ctx.decide(bg.run_simulator(
                 ctx, s, inputs[static_cast<std::size_t>(s)]));
           });
         }
         const auto run = rt.run(driver, 10'000'000);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 2);
       }},
      {"immediate_snapshot_n5",
       [](ScheduleDriver& driver) {
         Runtime rt;
         ImmediateSnapshot is(5);
         std::vector<std::vector<ImmediateSnapshot::Member>> views(5);
         for (int p = 0; p < 5; ++p) {
           rt.add_process([&, p](Context& ctx) {
             views[static_cast<std::size_t>(p)] =
                 is.participate(ctx, p, 100 + p);
           });
         }
         rt.run(driver);
         // Containment spot-check: view sizes must be pairwise comparable
         // (full property sweeps live in the tests).
         for (int a = 0; a < 5; ++a) {
           bool self = false;
           for (const auto& member : views[static_cast<std::size_t>(a)]) {
             self = self || member.slot == a;
           }
           if (!self) {
             throw SpecViolation("self-inclusion violated");
           }
         }
       }},
      {"safe_agreement_adopt_commit_mix",
       [](ScheduleDriver& driver) {
         Runtime rt;
         SafeAgreement sa(4);
         AdoptCommit ac(4);
         std::vector<Value> agreed(4, kBottom);
         for (int p = 0; p < 4; ++p) {
           rt.add_process([&, p](Context& ctx) {
             sa.propose(ctx, p, 50 + p);
             agreed[static_cast<std::size_t>(p)] = sa.await(ctx);
             ac.propose(ctx, p, agreed[static_cast<std::size_t>(p)]);
           });
         }
         rt.run(driver);
         for (const Value v : agreed) {
           if (v != agreed[0]) {
             throw SpecViolation("safe agreement drift");
           }
         }
       }},
  };

  bool ok = true;
  long total = 0;
  std::printf("%-34s %12s %14s\n", "workload", "runs", "runs/sec");
  std::vector<subc_bench::Json> rows;
  for (const auto& workload : workloads) {
    const auto start = Clock::now();
    const long runs = soak_one(workload, seconds, &ok);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    total += runs;
    const double per_sec = runs / std::max(elapsed, 1e-9);
    std::printf("%-34s %12ld %14.0f\n", workload.name, runs, per_sec);
    subc_bench::Json row;
    row.set("workload", workload.name)
        .set("runs", static_cast<std::int64_t>(runs))
        .set("runs_per_sec", per_sec);
    rows.push_back(row);
  }
  std::printf("\ntotal validated executions: %ld, violations: %s\n", total,
              ok ? "0" : "SOME (see above)");
  subc_bench::Json out;
  out.set("bench", "F8")
      .set("seconds_per_workload", seconds)
      .set("total_runs", static_cast<std::int64_t>(total))
      .set("workloads", rows)
      .set("pass", ok);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::write_json("BENCH_F8.json", out);
  std::printf("\nF8 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
