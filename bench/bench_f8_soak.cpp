// Experiment F8 — soak: the release-quality reliability artifact, in two
// stages.
//
// Stage 1 (legacy workloads): a fixed wall-clock budget of randomized mixed
// schedules over every major construction, validating everything on every
// run. Each workload draws from its own disjoint seed stream (stream w =
// seeds [(w+1)<<32, (w+2)<<32)), so no two workloads replay overlapping
// schedule prefixes and every failure reproduces from (workload, seed).
// Step-quota `StuckCut`s are reported as structured diagnostics and the
// soak continues; only spec violations fail the stage.
//
// Stage 2 (sharded agreement as a service): the multi-instance soak, now
// driven through `ShardedService` (runtime/service.hpp) at 1 / 2 / 4 / 8
// shards — one InstanceTable per worker thread, clients routed by
// mix64(instance_id) through backpressured per-shard inboxes, decided
// requests' fingerprints recorded in the cross-shard dedup memo, and a
// ~1/64 replay stream exercising memo hits. Each shard runs the nano-style
// weighted-validator quorum (2/3 of total instance weight, offline members
// counted), a deterministic virtual clock for op jitter / timeouts / GC,
// and the spot audit (linearizability for 1sWRN, validity + k-agreement
// otherwise) now runs inside the decide callback on the worker threads.
//
// Self-gates: zero violations, every shard table drained at exit, ≥ 1000
// peak live instances per shard, and — only on hosts with ≥ 8 usable cores
// (4 workers + 4 producers) — ≥ 2.5x aggregate ops/s at 4 shards vs 1.
// The measured scaling ratio is stamped either way; on smaller hosts the
// absolute-throughput cells are what scripts/check.sh --perf-smoke gates
// against the committed baseline.
//
//   bench_f8_soak [seconds-per-workload] [soak-seconds] [audit-percent]
//                 (defaults 2, 4, 25; pass 0 seconds to skip a stage —
//                  check.sh --soak-smoke runs `0 5 100`; soak-seconds is
//                  split evenly across the four shard configurations)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "subc/algorithms/adopt_commit.hpp"
#include "subc/algorithms/bg_simulation.hpp"
#include "subc/algorithms/immediate_snapshot.hpp"
#include "subc/algorithms/safe_agreement.hpp"
#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/service.hpp"

namespace {

using namespace subc;
using Clock = std::chrono::steady_clock;

struct Workload {
  const char* name;
  ExecutionBody body;
};

struct SoakOutcome {
  long runs = 0;   ///< validated executions
  long stuck = 0;  ///< step-quota diagnostics (not failures)
  bool ok = true;
};

SoakOutcome soak_one(const Workload& workload, double seconds,
                     std::uint64_t seed_base) {
  SoakOutcome out;
  std::uint64_t seed = seed_base;
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    RandomDriver driver(seed++);
    try {
      workload.body(driver);
    } catch (const StuckCut&) {
      // Step-quota watchdog: a livelocked schedule is a structured
      // diagnostic, not a soak abort (it is not derived from
      // std::exception precisely so bodies cannot swallow it — report it
      // here, at the harness boundary).
      ++out.stuck;
      std::printf("  .. %s stuck at seed %llu (step-quota watchdog)\n",
                  workload.name,
                  static_cast<unsigned long long>(seed - 1));
      continue;
    } catch (const std::exception& e) {
      std::printf("  !! %s violated at seed %llu: %s\n", workload.name,
                  static_cast<unsigned long long>(seed - 1), e.what());
      out.ok = false;
      return out;
    }
    ++out.runs;
  }
  return out;
}

// --- Stage 2: the sharded agreement-as-a-service soak ---------------------

/// nano-style fixed validator set: 16 validators whose weights sum to
/// 1000; a decision commits once served proposals cover quorum weight.
/// (The `fixed_validators` rig in SNIPPETS.md is the exemplar; 667 = 2/3.)
constexpr int kValidators = 16;
constexpr unsigned kWeights[kValidators] = {180, 140, 120, 100, 90, 80, 70,
                                            60,  45,  35,  25,  20, 15, 10,
                                            6,   4};

/// One logical client request: the open shape plus its op schedule, kept
/// whole so a replay resubmits the identical request under its original
/// `request_fp` (fresh id → usually a different shard → cross-shard dedup).
struct Request {
  OpenSpec spec;
  std::vector<OpSpec> ops;
};

/// Aggregate of one (shard-count, duration) soak configuration.
struct ShardSoakResult {
  int shards = 1;
  std::int64_t opened = 0;
  std::int64_t ops = 0;
  std::int64_t decided = 0;
  std::int64_t timed_out = 0;
  std::int64_t dedup_hits = 0;
  std::int64_t dedup_records = 0;
  std::int64_t audited = 0;
  std::int64_t violations = 0;
  std::int64_t ticks = 0;          ///< max virtual clock across shards
  std::int64_t peak_live_min = 0;  ///< per-shard high-water marks
  std::int64_t peak_live_max = 0;
  std::int64_t live_at_exit = 0;
  std::int64_t blocks_carved = 0;
  std::int64_t block_reuses = 0;
  std::int64_t gc_sweeps = 0;
  std::int64_t inbox_peak = 0;
  int pinned_workers = 0;
  std::vector<std::int64_t> shard_ops;  ///< applied ops, per shard
  double ops_per_sec = 0.0;
  double p50_ticks = 0.0;
  double p99_ticks = 0.0;
};

double hist_percentile(const std::vector<std::int64_t>& hist, double p) {
  std::int64_t total = 0;
  for (const std::int64_t n : hist) {
    total += n;
  }
  if (total == 0) {
    return 0.0;
  }
  const auto target = static_cast<std::int64_t>(
      p * static_cast<double>(total - 1) + 0.5);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    seen += hist[i];
    if (seen > target) {
      return static_cast<double>(i);
    }
  }
  return static_cast<double>(hist.size() - 1);
}

/// Audits one decided instance from the worker-side view: 1sWRN history
/// segments go through the linearizability checker (hashed fingerprint
/// memo); GAC / set-consensus are checked for validity (responses ⊆
/// proposals) and k-agreement (≤ spec_k distinct responses).
bool audit_view(const DecidedView& view) {
  if (view.block->kind == InstanceKind::kOneShotWrn) {
    try {
      require_linearizable(OneShotWrnSpec{view.block->wrn.k},
                           view.block->history);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
  int distinct = 0;
  std::vector<Value> seen;
  for (const Value r : *view.responses) {
    bool valid = false;
    for (const Value p : *view.proposals) {
      valid = valid || p == r;
    }
    if (!valid) {
      return false;  // response was never proposed
    }
    bool dup = false;
    for (const Value s : seen) {
      dup = dup || s == r;
    }
    if (!dup) {
      seen.push_back(r);
      ++distinct;
    }
  }
  return distinct <= view.spec_k;
}

/// Draws one fresh request from a producer's deterministic stream: 3..6
/// distinct weight-diverse validators, a kind mix over all three cores,
/// quorum judged against the full participant weight (offline members —
/// ~1/16 of participants — included, so unreachable quorums and the
/// timeout lane stay exercised), op arrival jitter over the horizon.
Request make_request(std::uint64_t& rng, int producer, std::uint64_t seq,
                     int horizon_ticks) {
  const auto pick = [&rng](std::uint64_t bound) {
    rng = subc::detail::mix64(rng);
    return rng % bound;
  };
  Request req;
  const int participants = 3 + static_cast<int>(pick(4));
  int chosen[6];
  int got = 0;
  while (got < participants) {
    const int v = static_cast<int>(pick(kValidators));
    bool dup = false;
    for (int c = 0; c < got; ++c) {
      dup = dup || chosen[c] == v;
    }
    if (!dup) {
      chosen[got++] = v;
    }
  }

  const int kind_sel = static_cast<int>(pick(3));
  if (kind_sel == 0) {
    // 1sWRN_k with one slot per participant (k >= 2 guaranteed).
    req.spec.kind = InstanceKind::kOneShotWrn;
    req.spec.a = participants;
    req.spec.spec_k = participants;
  } else if (kind_sel == 1) {
    const int level = static_cast<int>(pick(3));  // GAC(n, 0..2)
    req.spec.kind = InstanceKind::kGac;
    req.spec.a = participants;
    req.spec.b = level;
    req.spec.spec_k = level + 1;
  } else {
    // (n, k)-set-consensus with n = participants + 1 > k >= 1.
    const int k = 1 + static_cast<int>(
                      pick(static_cast<std::uint64_t>(participants) - 1));
    req.spec.kind = InstanceKind::kSetConsensus;
    req.spec.a = participants + 1;
    req.spec.b = k;
    req.spec.spec_k = k;
  }

  for (int c = 0; c < participants; ++c) {
    const int validator = chosen[c];
    req.spec.total_weight += kWeights[validator];
    if (pick(16) == 0) {
      continue;  // ~1/16 of participants are offline
    }
    OpSpec op;
    op.validator = validator;
    op.weight = kWeights[validator];
    op.slot = c;
    op.value = static_cast<Value>(1000 + validator);
    op.delay_ticks = 1 + static_cast<int>(pick(
                         static_cast<std::uint64_t>(horizon_ticks)));
    req.ops.push_back(op);
  }

  std::uint64_t fp = subc::detail::mix64(
      (static_cast<std::uint64_t>(producer) + 1) << 40 ^ seq);
  req.spec.request_fp = fp == 0 ? 1 : fp;
  return req;
}

/// One producer thread: fresh requests at full speed (backpressure from
/// the shard inboxes is the only throttle), with ~1/64 replays drawn from
/// a reservoir of its own past requests.
void produce(ShardedService& svc, int producer, double seconds,
             std::atomic<std::int64_t>& replays) {
  std::uint64_t rng =
      0xf8f8f8f8ULL + ((static_cast<std::uint64_t>(producer) + 1) << 32);
  const auto pick = [&rng](std::uint64_t bound) {
    rng = subc::detail::mix64(rng);
    return rng % bound;
  };
  std::vector<Request> reservoir;
  std::uint64_t seq = 0;
  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    for (int burst = 0; burst < 32; ++burst) {
      if (!reservoir.empty() && pick(64) == 0) {
        const Request& req = reservoir[pick(reservoir.size())];
        const ServiceId id = svc.open(req.spec);
        for (const OpSpec& op : req.ops) {
          svc.submit(id, op);
        }
        replays.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Request req = make_request(rng, producer, ++seq,
                                 svc.options().horizon_ticks);
      const ServiceId id = svc.open(req.spec);
      for (const OpSpec& op : req.ops) {
        svc.submit(id, op);
      }
      if (reservoir.size() < 128) {
        reservoir.push_back(std::move(req));
      } else if (pick(4) == 0) {
        reservoir[pick(reservoir.size())] = std::move(req);
      }
    }
  }
}

ShardSoakResult run_sharded_soak(int shards, double seconds,
                                 int audit_percent) {
  ServiceOptions opts;  // defaults carry the soak's virtual-clock shape
  opts.shards = shards;
  std::atomic<std::int64_t> audited{0};
  std::atomic<std::int64_t> violations{0};
  std::atomic<std::int64_t> replays{0};
  ShardedService svc(opts, [&](const DecidedView& view) {
    if (static_cast<int>(subc::detail::mix64(view.id) % 100) <
        audit_percent) {
      audited.fetch_add(1, std::memory_order_relaxed);
      if (!audit_view(view)) {
        violations.fetch_add(1, std::memory_order_relaxed);
        std::printf("  !! shard %d instance %llu (%s): audit violation\n",
                    view.shard, static_cast<unsigned long long>(view.id),
                    to_string(view.block->kind));
      }
    }
  });

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(shards));
  for (int p = 0; p < shards && seconds > 0.0; ++p) {
    producers.emplace_back(
        [&svc, p, seconds, &replays] { produce(svc, p, seconds, replays); });
  }
  for (auto& th : producers) {
    th.join();
  }
  svc.stop();  // drains every shard to quiescence
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  ShardSoakResult res;
  res.shards = shards;
  res.audited = audited.load();
  res.violations = violations.load();
  std::vector<std::int64_t> hist;
  for (const ShardStats& st : svc.stats()) {
    res.opened += st.opened;
    res.ops += st.ops;
    res.shard_ops.push_back(st.ops);
    res.decided += st.decided;
    res.timed_out += st.timed_out;
    res.dedup_hits += st.dedup_hits;
    res.dedup_records += st.dedup_records;
    res.gc_sweeps += st.gc_sweeps;
    res.live_at_exit += st.live_at_exit;
    res.blocks_carved += st.blocks_carved;
    res.block_reuses += st.block_reuses;
    res.ticks = std::max(res.ticks, st.ticks);
    res.inbox_peak =
        std::max(res.inbox_peak, static_cast<std::int64_t>(st.inbox_peak));
    res.pinned_workers += st.pinned ? 1 : 0;
    res.peak_live_min = res.peak_live_min == 0
                            ? st.peak_live
                            : std::min(res.peak_live_min, st.peak_live);
    res.peak_live_max = std::max(res.peak_live_max, st.peak_live);
    if (st.latency_hist.size() > hist.size()) {
      hist.resize(st.latency_hist.size(), 0);
    }
    for (std::size_t i = 0; i < st.latency_hist.size(); ++i) {
      hist[i] += st.latency_hist[i];
    }
    // The service never issues illegal ops: a hang is a violation.
    res.violations += st.hung_ops;
  }
  res.ops_per_sec = static_cast<double>(res.ops) / std::max(elapsed, 1e-9);
  res.p50_ticks = hist_percentile(hist, 0.50);
  res.p99_ticks = hist_percentile(hist, 0.99);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double soak_seconds = argc > 2 ? std::atof(argv[2]) : 4.0;
  const int audit_percent =
      argc > 3 ? std::min(100, std::max(0, std::atoi(argv[3]))) : 25;
  std::printf(
      "F8: soak — %.1f s of adversarial schedules per workload, %.1f s "
      "sharded agreement-as-a-service (audit %d%%)\n\n",
      seconds, soak_seconds, audit_percent);

  const std::vector<Workload> workloads{
      {"algorithm2_k6",
       [](ScheduleDriver& driver) {
         Runtime rt;
         WrnSetConsensus task(6);
         const std::vector<Value> inputs{1, 2, 3, 4, 5, 6};
         for (int p = 0; p < 6; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(
                 task.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(driver);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 5);
       }},
      {"algorithm5_k4_linearizable",
       [](ScheduleDriver& driver) {
         Runtime rt;
         WrnFromSse object(4);
         History history;
         for (int p = 0; p < 4; ++p) {
           rt.add_process([&, p](Context& ctx) {
             object.one_shot_wrn(ctx, p, 100 + p, &history);
           });
         }
         rt.run(driver);
         require_linearizable(OneShotWrnSpec{4}, history);
       }},
      {"algorithm3_k3",
       [](ScheduleDriver& driver) {
         Runtime rt;
         AnonymousSetConsensus task(3, 3);
         const std::vector<Value> inputs{7, 8, 9};
         for (int p = 0; p < 3; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(task.propose(ctx, p, 900 + p,
                                     inputs[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(driver, 10'000'000);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 2);
       }},
      {"bg_simulation_352",
       [](ScheduleDriver& driver) {
         Runtime rt;
         BgSimulation bg(3, 5, 2);
         const std::vector<Value> inputs{10, 20, 30};
         for (int s = 0; s < 3; ++s) {
           rt.add_process([&, s](Context& ctx) {
             ctx.decide(bg.run_simulator(
                 ctx, s, inputs[static_cast<std::size_t>(s)]));
           });
         }
         const auto run = rt.run(driver, 10'000'000);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 2);
       }},
      {"immediate_snapshot_n5",
       [](ScheduleDriver& driver) {
         Runtime rt;
         ImmediateSnapshot is(5);
         std::vector<std::vector<ImmediateSnapshot::Member>> views(5);
         for (int p = 0; p < 5; ++p) {
           rt.add_process([&, p](Context& ctx) {
             views[static_cast<std::size_t>(p)] =
                 is.participate(ctx, p, 100 + p);
           });
         }
         rt.run(driver);
         // Containment spot-check: view sizes must be pairwise comparable
         // (full property sweeps live in the tests).
         for (int a = 0; a < 5; ++a) {
           bool self = false;
           for (const auto& member : views[static_cast<std::size_t>(a)]) {
             self = self || member.slot == a;
           }
           if (!self) {
             throw SpecViolation("self-inclusion violated");
           }
         }
       }},
      {"safe_agreement_adopt_commit_mix",
       [](ScheduleDriver& driver) {
         Runtime rt;
         SafeAgreement sa(4);
         AdoptCommit ac(4);
         std::vector<Value> agreed(4, kBottom);
         for (int p = 0; p < 4; ++p) {
           rt.add_process([&, p](Context& ctx) {
             sa.propose(ctx, p, 50 + p);
             agreed[static_cast<std::size_t>(p)] = sa.await(ctx);
             ac.propose(ctx, p, agreed[static_cast<std::size_t>(p)]);
           });
         }
         rt.run(driver);
         for (const Value v : agreed) {
           if (v != agreed[0]) {
             throw SpecViolation("safe agreement drift");
           }
         }
       }},
  };

  bool ok = true;
  long total = 0;
  long total_stuck = 0;
  const AllocCounters before_legacy = alloc_counters();
  std::printf("%-34s %12s %14s %8s %18s\n", "workload", "runs", "runs/sec",
              "stuck", "seed_base");
  std::vector<subc_bench::Json> rows;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const Workload& workload = workloads[w];
    // Disjoint, reproducible seed streams: workload w draws from
    // [(w+1)<<32, (w+2)<<32), so no two workloads share a schedule prefix.
    const std::uint64_t seed_base = (static_cast<std::uint64_t>(w) + 1) << 32;
    const auto start = Clock::now();
    const SoakOutcome outcome = soak_one(workload, seconds, seed_base);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    ok = ok && outcome.ok;
    total += outcome.runs;
    total_stuck += outcome.stuck;
    const double per_sec = outcome.runs / std::max(elapsed, 1e-9);
    std::printf("%-34s %12ld %14.0f %8ld %#18llx\n", workload.name,
                outcome.runs, per_sec, outcome.stuck,
                static_cast<unsigned long long>(seed_base));
    subc_bench::Json row;
    row.set("workload", workload.name)
        .set("runs", static_cast<std::int64_t>(outcome.runs))
        .set("runs_per_sec", per_sec)
        .set("stuck_runs", static_cast<std::int64_t>(outcome.stuck))
        .set("seed_base", static_cast<std::int64_t>(seed_base));
    rows.push_back(row);
  }
  const AllocCounters legacy_delta = alloc_counters_delta(before_legacy);
  std::printf("\ntotal validated executions: %ld, stuck: %ld, violations: %s\n",
              total, total_stuck, ok ? "0" : "SOME (see above)");

  // --- Stage 2: sharded agreement as a service ----------------------------
  const std::vector<int> cpus = usable_cpus();
  constexpr int kConfigs[] = {1, 2, 4, 8};
  const double per_config = soak_seconds / 4.0;
  const AllocCounters before_service = alloc_counters();
  std::printf(
      "\nsharded service soak (%zu usable cpus, %.2f s per configuration):\n"
      "%7s %12s %12s %10s %10s %8s %6s %6s %16s %7s\n",
      cpus.size(), per_config, "shards", "ops", "ops/sec", "decided",
      "timedout", "dedup", "p50", "p99", "peak_live/shard", "pinned");
  std::vector<ShardSoakResult> results;
  std::vector<subc_bench::Json> config_rows;
  for (const int shards : kConfigs) {
    const ShardSoakResult res =
        run_sharded_soak(shards, per_config, audit_percent);
    std::printf("%7d %12lld %12.0f %10lld %10lld %8lld %6.0f %6.0f %7lld..%-7lld %4d/%d\n",
                res.shards, static_cast<long long>(res.ops), res.ops_per_sec,
                static_cast<long long>(res.decided),
                static_cast<long long>(res.timed_out),
                static_cast<long long>(res.dedup_hits), res.p50_ticks,
                res.p99_ticks, static_cast<long long>(res.peak_live_min),
                static_cast<long long>(res.peak_live_max), res.pinned_workers,
                res.shards);
    subc_bench::Json row;
    row.set("shards", res.shards)
        .set("ops", res.ops)
        .set("ops_per_sec", res.ops_per_sec)
        .set("opened", res.opened)
        .set("decided", res.decided)
        .set("timed_out", res.timed_out)
        .set("dedup_hits", res.dedup_hits)
        .set("dedup_records", res.dedup_records)
        .set("audited", res.audited)
        .set("violations", res.violations)
        .set("p50_ticks", res.p50_ticks)
        .set("p99_ticks", res.p99_ticks)
        .set("peak_live_min", res.peak_live_min)
        .set("peak_live_max", res.peak_live_max)
        .set("live_at_exit", res.live_at_exit)
        .set("inbox_peak", res.inbox_peak)
        .set("shard_ops", res.shard_ops)
        .set("pinned_workers", res.pinned_workers);
    config_rows.push_back(row);
    results.push_back(res);
  }
  const AllocCounters service_delta = alloc_counters_delta(before_service);

  const ShardSoakResult& r1 = results[0];
  const ShardSoakResult& r4 = results[2];
  const double scaling_x =
      r1.ops_per_sec > 0.0 ? r4.ops_per_sec / r1.ops_per_sec : 1.0;
  // 4 workers + 4 producers need 8 cores before wall-clock scaling is a
  // meaningful promise; smaller hosts stamp the measured ratio but gate
  // throughput via the committed perf baseline instead.
  const bool scaling_gated = soak_seconds > 0.0 && cpus.size() >= 8;
  std::printf("  aggregate scaling at 4 shards vs 1: %.2fx (%s)\n", scaling_x,
              scaling_gated ? "gated >= 2.5x" : "not gated on this host");

  std::int64_t all_audited = 0;
  std::int64_t all_violations = 0;
  std::int64_t all_dedup_hits = 0;
  for (const ShardSoakResult& res : results) {
    all_audited += res.audited;
    all_violations += res.violations;
    all_dedup_hits += res.dedup_hits;
    if (res.violations != 0) {
      ok = false;
    }
    if (res.live_at_exit != 0) {
      std::printf("  !! %d-shard config leaked %lld live instances\n",
                  res.shards, static_cast<long long>(res.live_at_exit));
      ok = false;
    }
    if (soak_seconds > 0.0 && res.peak_live_min < 1000) {
      std::printf("  !! %d-shard config: peak live %lld/shard < 1000\n",
                  res.shards, static_cast<long long>(res.peak_live_min));
      ok = false;
    }
  }
  if (scaling_gated && scaling_x < 2.5) {
    std::printf("  !! 4-shard scaling %.2fx < 2.5x with %zu usable cpus\n",
                scaling_x, cpus.size());
    ok = false;
  }
  std::printf("  audited %lld, violations %lld, cross-shard dedup hits %lld\n",
              static_cast<long long>(all_audited),
              static_cast<long long>(all_violations),
              static_cast<long long>(all_dedup_hits));

  subc_bench::Json out;
  out.set("bench", "F8")
      .set("seconds_per_workload", seconds)
      .set("soak_seconds", soak_seconds)
      .set("audit_percent", audit_percent)
      .set("total_runs", static_cast<std::int64_t>(total))
      .set("total_stuck", static_cast<std::int64_t>(total_stuck))
      .set("workloads", rows)
      .set("pass", ok);
  // Headline soak_* cells describe the 4-shard configuration; violations
  // and the audit total cover all four (the self-gates span them all).
  subc_bench::set_soak_fields(out, r4.ops_per_sec, r4.p50_ticks, r4.p99_ticks,
                              r4.peak_live_max, r4.decided + r4.timed_out,
                              all_audited, all_violations, r4.shards,
                              r4.shard_ops, all_dedup_hits, scaling_x);
  out.set("soak_decisions", r4.decided)
      .set("soak_timed_out", r4.timed_out)
      .set("soak_ticks", r4.ticks)
      .set("soak_blocks_carved", r4.blocks_carved)
      .set("soak_block_reuses", r4.block_reuses)
      .set("soak_scaling_gated", scaling_gated)
      .set("soak_usable_cpus", static_cast<std::int64_t>(cpus.size()))
      .set("soak_ops_per_sec_1shard", r1.ops_per_sec)
      .set("soak_ops_per_sec_4shard", r4.ops_per_sec)
      .set("soak_configs", config_rows);
  // Per-stage allocator deltas: the legacy stage churns fiber stacks and
  // world arenas; the service stage should be instance blocks only.
  out.set("alloc_delta_legacy", subc_bench::alloc_counter_cell(legacy_delta))
      .set("alloc_delta_service",
           subc_bench::alloc_counter_cell(service_delta));
  // The legacy stage never drives the exhaustive explorer; stamp the
  // neutral reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_F8.json", out);
  std::printf("\nF8 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
