// Experiment F8 — soak: the release-quality reliability artifact, in two
// stages.
//
// Stage 1 (legacy workloads): a fixed wall-clock budget of randomized mixed
// schedules over every major construction, validating everything on every
// run. Each workload draws from its own disjoint seed stream (stream w =
// seeds [(w+1)<<32, (w+2)<<32)), so no two workloads replay overlapping
// schedule prefixes and every failure reproduces from (workload, seed).
// Step-quota `StuckCut`s are reported as structured diagnostics and the
// soak continues; only spec violations fail the stage.
//
// Stage 2 (agreement as a service): a long-running multi-instance soak over
// the instance layer (runtime/instance.hpp) — thousands of concurrent
// 1sWRN / GAC / set-consensus instances multiplexed over one arena, with
// nano-style weighted validators (quorum = 2/3 of total weight), a
// deterministic virtual clock driving op arrival jitter and timeouts,
// decision-latency percentiles in ticks, instance-table GC, and a spot
// linearizability / agreement audit sampling decided instances' history
// segments into the fingerprint checker. Violations must be 0 and the
// table must drain to 0 live instances at exit.
//
//   bench_f8_soak [seconds-per-workload] [soak-seconds] [audit-percent]
//                 (defaults 2, 4, 25; pass 0 seconds to skip a stage —
//                  check.sh --soak-smoke runs `0 5 100`)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "subc/algorithms/adopt_commit.hpp"
#include "subc/algorithms/bg_simulation.hpp"
#include "subc/algorithms/immediate_snapshot.hpp"
#include "subc/algorithms/safe_agreement.hpp"
#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/instance.hpp"

namespace {

using namespace subc;
using Clock = std::chrono::steady_clock;

struct Workload {
  const char* name;
  ExecutionBody body;
};

struct SoakOutcome {
  long runs = 0;   ///< validated executions
  long stuck = 0;  ///< step-quota diagnostics (not failures)
  bool ok = true;
};

SoakOutcome soak_one(const Workload& workload, double seconds,
                     std::uint64_t seed_base) {
  SoakOutcome out;
  std::uint64_t seed = seed_base;
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    RandomDriver driver(seed++);
    try {
      workload.body(driver);
    } catch (const StuckCut&) {
      // Step-quota watchdog: a livelocked schedule is a structured
      // diagnostic, not a soak abort (it is not derived from
      // std::exception precisely so bodies cannot swallow it — report it
      // here, at the harness boundary).
      ++out.stuck;
      std::printf("  .. %s stuck at seed %llu (step-quota watchdog)\n",
                  workload.name,
                  static_cast<unsigned long long>(seed - 1));
      continue;
    } catch (const std::exception& e) {
      std::printf("  !! %s violated at seed %llu: %s\n", workload.name,
                  static_cast<unsigned long long>(seed - 1), e.what());
      out.ok = false;
      return out;
    }
    ++out.runs;
  }
  return out;
}

// --- Stage 2: the agreement-as-a-service soak ----------------------------

/// nano-style fixed validator set: 16 validators whose weights sum to
/// 1000; a decision commits once served proposals cover quorum weight.
/// (The `fixed_validators` rig in SNIPPETS.md is the exemplar; 667 = 2/3.)
constexpr int kValidators = 16;
constexpr unsigned kWeights[kValidators] = {180, 140, 120, 100, 90, 80, 70,
                                            60,  45,  35,  25,  20, 15, 10,
                                            6,   4};
constexpr unsigned kQuorumNum = 2, kQuorumDen = 3;

constexpr int kOpenPerTick = 60;    ///< instances opened per virtual tick
constexpr int kHorizonTicks = 25;   ///< op arrival jitter window
constexpr int kTimeoutTicks = 40;   ///< undecided past this → timed out, GC'd
constexpr int kLingerTicks = 5;     ///< decided instances stay auditable

/// Bench-side per-instance bookkeeping (the table holds object state +
/// history; the service holds quorum progress and scheduling).
struct SoakMeta {
  unsigned total_weight = 0;
  unsigned served_weight = 0;
  std::vector<Value> proposals;
  std::vector<Value> responses;
  int spec_k = 0;       ///< 1sWRN k / GAC agreement / set-consensus k
  bool decided = false;
};

struct SoakOp {
  InstanceId id;
  int validator;
  int slot;
  Value value;
};

struct SoakResult {
  std::int64_t ops = 0;
  std::int64_t decided = 0;
  std::int64_t timed_out = 0;
  std::int64_t audited = 0;
  std::int64_t violations = 0;
  std::int64_t ticks = 0;
  std::int64_t peak_live = 0;
  std::int64_t live_at_exit = 0;
  std::int64_t blocks_carved = 0;
  std::int64_t block_reuses = 0;
  double ops_per_sec = 0.0;
  double p50_ticks = 0.0;
  double p99_ticks = 0.0;
};

double percentile(std::vector<std::int64_t>& xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx),
                   xs.end());
  return static_cast<double>(xs[idx]);
}

/// Audits one decided instance: 1sWRN history segments go through the
/// linearizability checker (hashed fingerprint memo); GAC / set-consensus
/// segments are checked for validity (responses ⊆ proposals) and
/// k-agreement (≤ spec_k distinct responses).
bool audit_instance(InstanceTable& table, InstanceId id, const SoakMeta& meta) {
  const InstanceBlock& block = table.at(id);
  if (block.kind == InstanceKind::kOneShotWrn) {
    try {
      require_linearizable(OneShotWrnSpec{block.wrn.k}, block.history);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
  int distinct = 0;
  std::vector<Value> seen;
  for (const Value r : meta.responses) {
    bool valid = false;
    for (const Value p : meta.proposals) {
      valid = valid || p == r;
    }
    if (!valid) {
      return false;  // response was never proposed
    }
    bool dup = false;
    for (const Value s : seen) {
      dup = dup || s == r;
    }
    if (!dup) {
      seen.push_back(r);
      ++distinct;
    }
  }
  return distinct <= meta.spec_k;
}

SoakResult run_service_soak(double seconds, int audit_percent) {
  InstanceTable table;
  std::unordered_map<InstanceId, SoakMeta> metas;
  // Ring buffers over the virtual clock: ops to apply, decided instances to
  // GC, deadlines to enforce. Slot = tick % ring size.
  constexpr int kRing = kHorizonTicks + kTimeoutTicks + kLingerTicks + 2;
  std::vector<std::vector<SoakOp>> op_ring(kRing);
  std::vector<std::vector<InstanceId>> gc_ring(kRing);
  std::vector<std::vector<InstanceId>> deadline_ring(kRing);

  SoakResult res;
  std::vector<std::int64_t> latencies;
  std::uint64_t rng = 0xf8f8f8f8ULL;
  const auto pick = [&rng](std::uint64_t bound) {
    rng = subc::detail::mix64(rng);
    return rng % bound;
  };

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration<double>(seconds);
  std::int64_t tick = 0;
  bool opening = seconds > 0.0;

  while (opening || table.stats().live > 0) {
    ++tick;
    if (opening && Clock::now() >= deadline) {
      opening = false;  // stop admitting; drain to quiescence
    }

    if (opening) {
      for (int j = 0; j < kOpenPerTick; ++j) {
        // Participant set: 3..6 distinct validators, weight-diverse.
        const int participants = 3 + static_cast<int>(pick(4));
        int chosen[6];
        int got = 0;
        while (got < participants) {
          const int v = static_cast<int>(pick(kValidators));
          bool dup = false;
          for (int c = 0; c < got; ++c) {
            dup = dup || chosen[c] == v;
          }
          if (!dup) {
            chosen[got++] = v;
          }
        }

        const int kind_sel = static_cast<int>(pick(3));
        InstanceId id = 0;
        SoakMeta meta;
        if (kind_sel == 0) {
          // 1sWRN_k with one slot per participant (k >= 2 guaranteed).
          id = table.open(InstanceKind::kOneShotWrn, participants, 0, tick);
          meta.spec_k = participants;
        } else if (kind_sel == 1) {
          const int level = static_cast<int>(pick(3));  // GAC(n, 0..2)
          id = table.open(InstanceKind::kGac, participants, level, tick);
          meta.spec_k = level + 1;
        } else {
          // (n, k)-set-consensus with n = participants + 1 > k >= 1.
          const int k = 1 + static_cast<int>(pick(
                            static_cast<std::uint64_t>(participants) - 1));
          id = table.open(InstanceKind::kSetConsensus, participants + 1, k,
                          tick);
          meta.spec_k = k;
        }

        for (int c = 0; c < participants; ++c) {
          const int validator = chosen[c];
          // Quorum is judged against the instance's full participant
          // weight, offline members included: an offline heavyweight
          // (> 1/3 of the instance weight) makes quorum unreachable — that
          // is what the timeout lane and undecided-GC exist to exercise.
          meta.total_weight += kWeights[validator];
          if (pick(16) == 0) {
            continue;  // ~1/16 of participants are offline
          }
          const auto at =
              tick + 1 + static_cast<std::int64_t>(pick(kHorizonTicks));
          const Value proposal = static_cast<Value>(1000 + validator);
          meta.proposals.push_back(proposal);
          op_ring[static_cast<std::size_t>(at % kRing)].push_back(
              SoakOp{id, validator, c, proposal});
        }
        deadline_ring[static_cast<std::size_t>((tick + kTimeoutTicks) % kRing)]
            .push_back(id);
        metas.emplace(id, std::move(meta));
      }
    }

    // Apply this tick's ops.
    auto& ops = op_ring[static_cast<std::size_t>(tick % kRing)];
    for (const SoakOp& op : ops) {
      const auto it = metas.find(op.id);
      if (it == metas.end() || table.find(op.id) == nullptr) {
        continue;  // instance already reclaimed (timed out)
      }
      SoakMeta& meta = it->second;
      bool hung = false;
      const Value out =
          table.apply(op.id, op.validator, op.slot, op.value,
                      subc::detail::mix64(op.id ^ static_cast<std::uint64_t>(
                                                      op.validator)),
                      &hung);
      ++res.ops;
      if (hung) {
        ++res.violations;  // the service never issues illegal ops
        std::printf("  !! instance %llu: unexpected hang\n",
                    static_cast<unsigned long long>(op.id));
        continue;
      }
      meta.responses.push_back(out);
      meta.served_weight += kWeights[static_cast<std::size_t>(op.validator)];
      if (!meta.decided &&
          meta.served_weight * kQuorumDen >= meta.total_weight * kQuorumNum) {
        meta.decided = true;
        table.decide(op.id, tick);
        ++res.decided;
        const InstanceBlock& block = table.at(op.id);
        latencies.push_back(tick - block.opened_at);
        if (static_cast<int>(subc::detail::mix64(op.id) % 100) <
            audit_percent) {
          ++res.audited;
          if (!audit_instance(table, op.id, meta)) {
            ++res.violations;
            std::printf("  !! instance %llu (%s): audit violation\n",
                        static_cast<unsigned long long>(op.id),
                        to_string(block.kind));
          }
        }
        gc_ring[static_cast<std::size_t>((tick + kLingerTicks) % kRing)]
            .push_back(op.id);
      }
    }
    ops.clear();

    // Reclaim decided instances whose linger window closed.
    auto& gcs = gc_ring[static_cast<std::size_t>(tick % kRing)];
    for (const InstanceId id : gcs) {
      table.gc(id);
      metas.erase(id);
    }
    gcs.clear();

    // Enforce deadlines: still-undecided instances time out and are GC'd.
    auto& deadlines = deadline_ring[static_cast<std::size_t>(tick % kRing)];
    for (const InstanceId id : deadlines) {
      const auto it = metas.find(id);
      if (it == metas.end() || it->second.decided) {
        continue;
      }
      table.gc(id);
      metas.erase(it);
      ++res.timed_out;
    }
    deadlines.clear();
  }

  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  res.ticks = tick;
  res.peak_live = table.stats().peak_live;
  res.live_at_exit = table.stats().live;
  res.blocks_carved = table.stats().blocks_carved;
  res.block_reuses = table.stats().block_reuses;
  res.ops_per_sec = static_cast<double>(res.ops) / std::max(elapsed, 1e-9);
  res.p50_ticks = percentile(latencies, 0.50);
  res.p99_ticks = percentile(latencies, 0.99);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double soak_seconds = argc > 2 ? std::atof(argv[2]) : 4.0;
  const int audit_percent =
      argc > 3 ? std::min(100, std::max(0, std::atoi(argv[3]))) : 25;
  std::printf(
      "F8: soak — %.1f s of adversarial schedules per workload, %.1f s "
      "agreement-as-a-service (audit %d%%)\n\n",
      seconds, soak_seconds, audit_percent);

  const std::vector<Workload> workloads{
      {"algorithm2_k6",
       [](ScheduleDriver& driver) {
         Runtime rt;
         WrnSetConsensus task(6);
         const std::vector<Value> inputs{1, 2, 3, 4, 5, 6};
         for (int p = 0; p < 6; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(
                 task.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(driver);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 5);
       }},
      {"algorithm5_k4_linearizable",
       [](ScheduleDriver& driver) {
         Runtime rt;
         WrnFromSse object(4);
         History history;
         for (int p = 0; p < 4; ++p) {
           rt.add_process([&, p](Context& ctx) {
             object.one_shot_wrn(ctx, p, 100 + p, &history);
           });
         }
         rt.run(driver);
         require_linearizable(OneShotWrnSpec{4}, history);
       }},
      {"algorithm3_k3",
       [](ScheduleDriver& driver) {
         Runtime rt;
         AnonymousSetConsensus task(3, 3);
         const std::vector<Value> inputs{7, 8, 9};
         for (int p = 0; p < 3; ++p) {
           rt.add_process([&, p](Context& ctx) {
             ctx.decide(task.propose(ctx, p, 900 + p,
                                     inputs[static_cast<std::size_t>(p)]));
           });
         }
         const auto run = rt.run(driver, 10'000'000);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 2);
       }},
      {"bg_simulation_352",
       [](ScheduleDriver& driver) {
         Runtime rt;
         BgSimulation bg(3, 5, 2);
         const std::vector<Value> inputs{10, 20, 30};
         for (int s = 0; s < 3; ++s) {
           rt.add_process([&, s](Context& ctx) {
             ctx.decide(bg.run_simulator(
                 ctx, s, inputs[static_cast<std::size_t>(s)]));
           });
         }
         const auto run = rt.run(driver, 10'000'000);
         check_all_done_and_decided(run);
         check_set_consensus(run, inputs, 2);
       }},
      {"immediate_snapshot_n5",
       [](ScheduleDriver& driver) {
         Runtime rt;
         ImmediateSnapshot is(5);
         std::vector<std::vector<ImmediateSnapshot::Member>> views(5);
         for (int p = 0; p < 5; ++p) {
           rt.add_process([&, p](Context& ctx) {
             views[static_cast<std::size_t>(p)] =
                 is.participate(ctx, p, 100 + p);
           });
         }
         rt.run(driver);
         // Containment spot-check: view sizes must be pairwise comparable
         // (full property sweeps live in the tests).
         for (int a = 0; a < 5; ++a) {
           bool self = false;
           for (const auto& member : views[static_cast<std::size_t>(a)]) {
             self = self || member.slot == a;
           }
           if (!self) {
             throw SpecViolation("self-inclusion violated");
           }
         }
       }},
      {"safe_agreement_adopt_commit_mix",
       [](ScheduleDriver& driver) {
         Runtime rt;
         SafeAgreement sa(4);
         AdoptCommit ac(4);
         std::vector<Value> agreed(4, kBottom);
         for (int p = 0; p < 4; ++p) {
           rt.add_process([&, p](Context& ctx) {
             sa.propose(ctx, p, 50 + p);
             agreed[static_cast<std::size_t>(p)] = sa.await(ctx);
             ac.propose(ctx, p, agreed[static_cast<std::size_t>(p)]);
           });
         }
         rt.run(driver);
         for (const Value v : agreed) {
           if (v != agreed[0]) {
             throw SpecViolation("safe agreement drift");
           }
         }
       }},
  };

  bool ok = true;
  long total = 0;
  long total_stuck = 0;
  std::printf("%-34s %12s %14s %8s %18s\n", "workload", "runs", "runs/sec",
              "stuck", "seed_base");
  std::vector<subc_bench::Json> rows;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const Workload& workload = workloads[w];
    // Disjoint, reproducible seed streams: workload w draws from
    // [(w+1)<<32, (w+2)<<32), so no two workloads share a schedule prefix.
    const std::uint64_t seed_base = (static_cast<std::uint64_t>(w) + 1) << 32;
    const auto start = Clock::now();
    const SoakOutcome outcome = soak_one(workload, seconds, seed_base);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    ok = ok && outcome.ok;
    total += outcome.runs;
    total_stuck += outcome.stuck;
    const double per_sec = outcome.runs / std::max(elapsed, 1e-9);
    std::printf("%-34s %12ld %14.0f %8ld %#18llx\n", workload.name,
                outcome.runs, per_sec, outcome.stuck,
                static_cast<unsigned long long>(seed_base));
    subc_bench::Json row;
    row.set("workload", workload.name)
        .set("runs", static_cast<std::int64_t>(outcome.runs))
        .set("runs_per_sec", per_sec)
        .set("stuck_runs", static_cast<std::int64_t>(outcome.stuck))
        .set("seed_base", static_cast<std::int64_t>(seed_base));
    rows.push_back(row);
  }
  std::printf("\ntotal validated executions: %ld, stuck: %ld, violations: %s\n",
              total, total_stuck, ok ? "0" : "SOME (see above)");

  // --- Stage 2: agreement as a service ------------------------------------
  const SoakResult soak = run_service_soak(soak_seconds, audit_percent);
  std::printf(
      "\nservice soak: %lld ops (%.0f ops/s) over %lld ticks\n"
      "  decisions %lld (p50 %.0f ticks, p99 %.0f ticks), timed out %lld\n"
      "  peak live instances %lld, gc'd %lld, live at exit %lld\n"
      "  blocks carved %lld, block reuses %lld\n"
      "  audited %lld, violations %lld\n",
      static_cast<long long>(soak.ops), soak.ops_per_sec,
      static_cast<long long>(soak.ticks), static_cast<long long>(soak.decided),
      soak.p50_ticks, soak.p99_ticks, static_cast<long long>(soak.timed_out),
      static_cast<long long>(soak.peak_live),
      static_cast<long long>(soak.decided + soak.timed_out),
      static_cast<long long>(soak.live_at_exit),
      static_cast<long long>(soak.blocks_carved),
      static_cast<long long>(soak.block_reuses),
      static_cast<long long>(soak.audited),
      static_cast<long long>(soak.violations));

  // Self-gates: no violations, the table fully drained, and (whenever the
  // service stage ran at all) the concurrency high-water mark the ROADMAP
  // promises.
  if (soak.violations != 0) {
    ok = false;
  }
  if (soak.live_at_exit != 0) {
    std::printf("  !! instance table leaked %lld live instances\n",
                static_cast<long long>(soak.live_at_exit));
    ok = false;
  }
  if (soak_seconds > 0.0 && soak.peak_live < 1000) {
    std::printf("  !! peak live instances %lld < 1000\n",
                static_cast<long long>(soak.peak_live));
    ok = false;
  }

  subc_bench::Json out;
  out.set("bench", "F8")
      .set("seconds_per_workload", seconds)
      .set("soak_seconds", soak_seconds)
      .set("audit_percent", audit_percent)
      .set("total_runs", static_cast<std::int64_t>(total))
      .set("total_stuck", static_cast<std::int64_t>(total_stuck))
      .set("workloads", rows)
      .set("pass", ok);
  subc_bench::set_soak_fields(out, soak.ops_per_sec, soak.p50_ticks,
                              soak.p99_ticks, soak.peak_live,
                              soak.decided + soak.timed_out, soak.audited,
                              soak.violations);
  out.set("soak_decisions", soak.decided)
      .set("soak_timed_out", soak.timed_out)
      .set("soak_ticks", soak.ticks)
      .set("soak_blocks_carved", soak.blocks_carved)
      .set("soak_block_reuses", soak.block_reuses);
  // The legacy stage never drives the exhaustive explorer; stamp the
  // neutral reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::write_json("BENCH_F8.json", out);
  std::printf("\nF8 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
