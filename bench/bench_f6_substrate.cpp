// Experiment F6 — register-substrate scaling: the costs of the classical
// building blocks this library grounds everything in.
//
// Series over n:
//  * immediate snapshot (participating set): level descents and steps per
//    participate() under contention;
//  * safe agreement: steps per propose plus resolve retries under random
//    scheduling;
//  * adopt-commit: commit rate under conflicting vs aligned proposals;
//  * register-built atomic snapshot: collects per scan under w writers.
// Sweeps run on the parallel RandomSweep; results also land in
// BENCH_F6.json.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "subc/algorithms/adopt_commit.hpp"
#include "subc/algorithms/immediate_snapshot.hpp"
#include "subc/algorithms/safe_agreement.hpp"
#include "subc/algorithms/snapshot_impl.hpp"
#include "subc/runtime/explorer.hpp"

namespace {

using namespace subc;

std::vector<subc_bench::Json> g_rows;

void record(const char* series, int n, double mean, long worst) {
  subc_bench::Json row;
  row.set("series", series).set("n", n).set("mean", mean).set(
      "worst", static_cast<std::int64_t>(worst));
  g_rows.push_back(row);
}

void series_immediate_snapshot(int threads) {
  std::printf("immediate snapshot — steps per participate():\n");
  std::printf("%4s  %12s  %12s\n", "n", "mean", "worst");
  for (const int n : {2, 4, 8, 12}) {
    std::mutex mu;
    long total = 0;
    long worst = 0;
    long samples = 0;
    const auto result = RandomSweep::run(
        [&](ScheduleDriver& driver) {
          Runtime rt;
          ImmediateSnapshot is(n);
          for (int p = 0; p < n; ++p) {
            rt.add_process(
                [&, p](Context& ctx) { is.participate(ctx, p, p + 1); });
          }
          rt.run(driver);
          const std::lock_guard<std::mutex> lock(mu);
          for (int p = 0; p < n; ++p) {
            const long steps = static_cast<long>(rt.steps_of(p));
            total += steps;
            worst = std::max(worst, steps);
            ++samples;
          }
        },
        200, 1, threads);
    const double mean =
        static_cast<double>(total) / static_cast<double>(samples);
    std::printf("%4d  %12.1f  %12ld%s\n", n, mean, worst,
                result.ok() ? "" : "  !! violation");
    record("immediate_snapshot", n, mean, worst);
  }
}

void series_safe_agreement(int threads) {
  std::printf("\nsafe agreement — steps per propose+await:\n");
  std::printf("%4s  %12s  %12s\n", "n", "mean", "worst");
  for (const int n : {2, 4, 8, 12}) {
    std::mutex mu;
    long total = 0;
    long worst = 0;
    long samples = 0;
    const auto result = RandomSweep::run(
        [&](ScheduleDriver& driver) {
          Runtime rt;
          SafeAgreement sa(n);
          for (int p = 0; p < n; ++p) {
            rt.add_process([&, p](Context& ctx) {
              sa.propose(ctx, p, 10 + p);
              sa.await(ctx);
            });
          }
          rt.run(driver);
          const std::lock_guard<std::mutex> lock(mu);
          for (int p = 0; p < n; ++p) {
            const long steps = static_cast<long>(rt.steps_of(p));
            total += steps;
            worst = std::max(worst, steps);
            ++samples;
          }
        },
        200, 1, threads);
    const double mean =
        static_cast<double>(total) / static_cast<double>(samples);
    std::printf("%4d  %12.1f  %12ld%s\n", n, mean, worst,
                result.ok() ? "" : "  !! violation");
    record("safe_agreement", n, mean, worst);
  }
}

void series_adopt_commit(int threads) {
  std::printf("\nadopt-commit — commit rate (fraction of processes that "
              "committed):\n");
  std::printf("%4s  %14s  %14s\n", "n", "aligned", "conflicting");
  for (const int n : {2, 4, 8}) {
    const auto rate = [n, threads](bool aligned) {
      std::mutex mu;
      long commits = 0;
      long outcomes = 0;
      RandomSweep::run(
          [&](ScheduleDriver& driver) {
            Runtime rt;
            AdoptCommit ac(n);
            for (int p = 0; p < n; ++p) {
              rt.add_process([&, p, aligned](Context& ctx) {
                const Value v = aligned ? 7 : 7 + p;
                const auto o = ac.propose(ctx, p, v);
                const std::lock_guard<std::mutex> lock(mu);
                ++outcomes;
                commits += o.grade == Grade::kCommit ? 1 : 0;
              });
            }
            rt.run(driver);
          },
          300, 1, threads);
      return static_cast<double>(commits) / static_cast<double>(outcomes);
    };
    const double aligned = rate(true);
    const double conflicting = rate(false);
    std::printf("%4d  %14.3f  %14.3f\n", n, aligned, conflicting);
    subc_bench::Json row;
    row.set("series", "adopt_commit")
        .set("n", n)
        .set("aligned_commit_rate", aligned)
        .set("conflicting_commit_rate", conflicting);
    g_rows.push_back(row);
  }
  std::printf("(aligned proposals must commit everywhere: expect 1.000)\n");
}

void series_snapshot(int threads) {
  std::printf("\nregister-built snapshot — steps per scan with w busy "
              "writers:\n");
  std::printf("%4s  %12s  %12s\n", "w", "mean", "worst");
  for (const int w : {1, 2, 4, 8}) {
    std::mutex mu;
    long total = 0;
    long worst = 0;
    long samples = 0;
    RandomSweep::run(
        [&](ScheduleDriver& driver) {
          Runtime rt;
          SnapshotFromRegisters<> snap(w + 1, 0);
          for (int i = 0; i < w; ++i) {
            rt.add_process([&, i](Context& ctx) {
              for (int u = 1; u <= 3; ++u) {
                snap.update(ctx, i, u);
              }
            });
          }
          rt.add_process([&](Context& ctx) {
            const std::int64_t before = ctx.runtime().steps_of(w);
            snap.scan(ctx);
            const long cost =
                static_cast<long>(ctx.runtime().steps_of(w) - before);
            const std::lock_guard<std::mutex> lock(mu);
            total += cost;
            worst = std::max(worst, cost);
            ++samples;
          });
          rt.run(driver);
        },
        300, 1, threads);
    const double mean =
        static_cast<double>(total) / static_cast<double>(samples);
    std::printf("%4d  %12.1f  %12ld\n", w, mean, worst);
    record("snapshot_scan", w, mean, worst);
  }
}

}  // namespace

int main() {
  const int threads = subc_bench::bench_threads();
  std::printf("F6: register-substrate scaling (%d threads)\n\n", threads);
  series_immediate_snapshot(threads);
  series_safe_agreement(threads);
  series_adopt_commit(threads);
  series_snapshot(threads);
  subc_bench::Json out;
  out.set("bench", "F6").set("threads", threads).set("rows", g_rows).set(
      "pass", true);
  // This bench never drives the exhaustive explorer; stamp the neutral
  // reduction telemetry every BENCH_<ID>.json carries.
  subc_bench::set_reduction_fields(out, 0, 0);
  subc_bench::set_policy_fields(out);
  subc_bench::set_crash_fields(out, 0, 0, 0);
  subc_bench::set_recovery_fields(out, 0, 0);
  subc_bench::write_json("BENCH_F6.json", out);
  std::printf("\nF6 PASS\n");
  return 0;
}
